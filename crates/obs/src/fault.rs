//! Deterministic fault injection: named failure points, armed by a seeded
//! schedule, free when disarmed.
//!
//! Production code marks the places where the outside world can fail —
//! socket reads, cache loads, worker threads — with a named
//! [`FaultPoint`] and asks [`should_fire`] whether to simulate the
//! failure *right here, right now*. The answer is driven entirely by an
//! armed [`FaultSchedule`]:
//!
//! * **Disarmed** (the production state) every check compiles down to a
//!   single relaxed atomic load — the same discipline as
//!   [`tracing_enabled`](crate::trace::tracing_enabled), so leaving the
//!   hooks in hot paths costs nothing measurable.
//! * **Armed**, each point follows its scheduled rule: fire on exactly
//!   the `n`-th hit ([`FaultSchedule::at_hit`]) or fire with probability
//!   `p` per hit ([`FaultSchedule::probability`]). Probabilistic
//!   decisions are a pure function of `(seed, point, hit index)` — a
//!   fresh ChaCha8 stream per decision — so a rerun with the same seed
//!   and the same per-point hit order reproduces the same faults, no
//!   matter how threads interleave *between* points.
//!
//! Every fired injection bumps a per-point counter (see [`fired`]) and,
//! when tracing is enabled, drops a `fault` event into the process-wide
//! observability ring.
//!
//! # Example
//!
//! ```
//! use lhcds_obs::fault::{self, FaultPoint, FaultSchedule};
//!
//! let schedule = FaultSchedule::parse("seed=42,worker_panic=@2,socket_read=0.5").unwrap();
//! fault::arm(schedule);
//! assert!(!fault::should_fire(FaultPoint::WorkerPanic)); // hit 1
//! assert!(fault::should_fire(FaultPoint::WorkerPanic)); // hit 2 fires
//! fault::disarm();
//! assert!(!fault::should_fire(FaultPoint::WorkerPanic));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Named places where a fault can be injected.
///
/// The names are stable protocol: they appear in `--fault-schedule`
/// specs, obs ring events, and the chaos test suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// A socket read fails mid-request; the connection is dropped.
    SocketRead,
    /// A socket write fails before any response byte leaves.
    SocketWrite,
    /// A response write delivers only a prefix, then the connection dies.
    PartialWrite,
    /// A request line arrives slowly (the read path stalls), pushing the
    /// request toward its deadline.
    SlowRead,
    /// Request execution panics inside a worker thread.
    WorkerPanic,
    /// Bytes read back from a binary cache file are corrupted in memory,
    /// forcing the checksum/validation path.
    CacheCorrupt,
    /// Loading a persisted index fails outright (as if the file were
    /// unreadable), driving the server's `degraded` health state.
    IndexLoad,
}

/// Number of registered injection points.
const POINTS: usize = 7;

impl FaultPoint {
    /// Every registered injection point, in stable order.
    pub const ALL: [FaultPoint; POINTS] = [
        FaultPoint::SocketRead,
        FaultPoint::SocketWrite,
        FaultPoint::PartialWrite,
        FaultPoint::SlowRead,
        FaultPoint::WorkerPanic,
        FaultPoint::CacheCorrupt,
        FaultPoint::IndexLoad,
    ];

    /// Stable wire name, as used in schedule specs and ring events.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::SocketRead => "socket_read",
            FaultPoint::SocketWrite => "socket_write",
            FaultPoint::PartialWrite => "partial_write",
            FaultPoint::SlowRead => "slow_read",
            FaultPoint::WorkerPanic => "worker_panic",
            FaultPoint::CacheCorrupt => "cache_corrupt",
            FaultPoint::IndexLoad => "index_load",
        }
    }

    /// Inverse of [`FaultPoint::name`].
    pub fn parse(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == name)
    }

    fn index(self) -> usize {
        FaultPoint::ALL.iter().position(|p| *p == self).unwrap()
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-point firing rule.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Fire with this probability on every hit.
    Prob(f64),
    /// Fire on exactly the `n`-th hit (1-based), once.
    AtHit(u64),
}

/// A seeded, fully reproducible plan for which hits of which points
/// fire. Build one with the fluent constructors or parse the textual
/// spec accepted by `lhcds serve --fault-schedule`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    rules: [Option<Mode>; POINTS],
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::new(0)
    }
}

impl FaultSchedule {
    /// An empty schedule (no point ever fires) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            rules: [None; POINTS],
        }
    }

    /// Fire `point` independently on each hit with probability `p`
    /// (clamped to `[0, 1]`), decided by the schedule's seed.
    pub fn probability(mut self, point: FaultPoint, p: f64) -> Self {
        self.rules[point.index()] = Some(Mode::Prob(p.clamp(0.0, 1.0)));
        self
    }

    /// Fire `point` on exactly its `n`-th hit (1-based), once.
    pub fn at_hit(mut self, point: FaultPoint, n: u64) -> Self {
        self.rules[point.index()] = Some(Mode::AtHit(n.max(1)));
        self
    }

    /// True when no point has a rule.
    pub fn is_empty(&self) -> bool {
        self.rules.iter().all(|r| r.is_none())
    }

    /// Parse a comma-separated spec: `seed=42,worker_panic=@3,socket_read=0.25`.
    ///
    /// Each entry is either `seed=<u64>` or `<point>=<rule>` where the
    /// rule is a probability in `[0, 1]` or `@<n>` for "fire on exactly
    /// the n-th hit". Unknown points and malformed rules are errors.
    pub fn parse(spec: &str) -> Result<FaultSchedule, String> {
        let mut schedule = FaultSchedule::new(0);
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault schedule entry `{entry}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                schedule.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("fault schedule seed `{value}` is not a u64"))?;
                continue;
            }
            let point = FaultPoint::parse(key).ok_or_else(|| {
                let known: Vec<&str> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
                format!("unknown fault point `{key}` (known: {})", known.join(" | "))
            })?;
            let mode = if let Some(n) = value.strip_prefix('@') {
                let n = n
                    .parse::<u64>()
                    .map_err(|_| format!("fault rule `{value}` for {key}: @<n> needs a u64"))?;
                if n == 0 {
                    return Err(format!("fault rule `{value}` for {key}: hits are 1-based"));
                }
                Mode::AtHit(n)
            } else {
                let p = value
                    .parse::<f64>()
                    .map_err(|_| format!("fault rule `{value}` for {key} is not a probability"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability {p} for {key} is outside [0, 1]"));
                }
                Mode::Prob(p)
            };
            schedule.rules[point.index()] = Some(mode);
        }
        Ok(schedule)
    }
}

struct ArmedState {
    schedule: FaultSchedule,
    /// Times each point was *checked* while armed with a rule present.
    hits: [u64; POINTS],
    /// Times each point actually fired.
    fired: [u64; POINTS],
}

/// The one flag the disarmed fast path reads.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ArmedState>> = Mutex::new(None);

fn state() -> MutexGuard<'static, Option<ArmedState>> {
    // An injected panic never unwinds while this lock is held (firing
    // happens at the call site, after the decision), but stay robust.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the registry with `schedule`, resetting all hit/fired counters.
pub fn arm(schedule: FaultSchedule) {
    let mut guard = state();
    *guard = Some(ArmedState {
        schedule,
        hits: [0; POINTS],
        fired: [0; POINTS],
    });
    ARMED.store(true, Ordering::Release);
}

/// Disarm the registry: every subsequent check is a single relaxed
/// atomic load answering `false`. Fired counters are cleared.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *state() = None;
}

/// True while a schedule is armed. One relaxed atomic load.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Should the named injection point simulate its failure now?
///
/// Disarmed, this is one relaxed atomic load and an immediate `false`.
/// Armed, the point's hit counter advances and its scheduled rule
/// decides — deterministically for a given `(seed, point, hit)`.
#[inline]
pub fn should_fire(point: FaultPoint) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    should_fire_armed(point)
}

#[cold]
fn should_fire_armed(point: FaultPoint) -> bool {
    let i = point.index();
    let hit;
    let fire;
    {
        let mut guard = state();
        let Some(armed) = guard.as_mut() else {
            return false;
        };
        let Some(mode) = armed.schedule.rules[i] else {
            return false;
        };
        armed.hits[i] += 1;
        hit = armed.hits[i];
        fire = match mode {
            Mode::AtHit(n) => hit == n,
            Mode::Prob(p) => decide(armed.schedule.seed, i as u64, hit, p),
        };
        if fire {
            armed.fired[i] += 1;
        }
    }
    if fire {
        crate::trace::event("fault", || format!("{} fired (hit {hit})", point.name()));
    }
    fire
}

/// One Bernoulli draw from a ChaCha8 stream keyed by (seed, point, hit):
/// reproducible regardless of when the hit happens in wall-clock time.
fn decide(seed: u64, point: u64, hit: u64, p: f64) -> bool {
    let key = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(point.wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(hit);
    ChaCha8Rng::seed_from_u64(key).gen_bool(p)
}

/// How many times `point` has fired since the registry was last armed
/// (0 when disarmed).
pub fn fired(point: FaultPoint) -> u64 {
    state()
        .as_ref()
        .map_or(0, |armed| armed.fired[point.index()])
}

/// Total injections fired across all points since the last [`arm`].
pub fn total_fired() -> u64 {
    state().as_ref().map_or(0, |armed| armed.fired.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The registry is process-global; serialize the tests that arm it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn names_round_trip() {
        for p in FaultPoint::ALL {
            assert_eq!(FaultPoint::parse(p.name()), Some(p));
        }
        assert_eq!(FaultPoint::parse("nope"), None);
    }

    #[test]
    fn disarmed_never_fires() {
        let _gate = serial();
        disarm();
        for p in FaultPoint::ALL {
            for _ in 0..100 {
                assert!(!should_fire(p));
            }
            assert_eq!(fired(p), 0);
        }
    }

    #[test]
    fn at_hit_fires_exactly_once() {
        let _gate = serial();
        arm(FaultSchedule::new(7).at_hit(FaultPoint::WorkerPanic, 3));
        let fires: Vec<bool> = (0..6)
            .map(|_| should_fire(FaultPoint::WorkerPanic))
            .collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(fired(FaultPoint::WorkerPanic), 1);
        assert_eq!(total_fired(), 1);
        // A point with no rule never advances or fires.
        assert!(!should_fire(FaultPoint::SocketRead));
        assert_eq!(fired(FaultPoint::SocketRead), 0);
        disarm();
    }

    #[test]
    fn probability_stream_is_reproducible_and_seed_sensitive() {
        let _gate = serial();
        let run = |seed: u64| -> Vec<bool> {
            arm(FaultSchedule::new(seed).probability(FaultPoint::SocketRead, 0.5));
            let v = (0..64)
                .map(|_| should_fire(FaultPoint::SocketRead))
                .collect();
            disarm();
            v
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().any(|&f| f), "p=0.5 over 64 hits should fire");
        assert!(!a.iter().all(|&f| f), "p=0.5 over 64 hits should also skip");
    }

    #[test]
    fn probability_extremes() {
        let _gate = serial();
        arm(FaultSchedule::new(1)
            .probability(FaultPoint::SocketWrite, 1.0)
            .probability(FaultPoint::SlowRead, 0.0));
        for _ in 0..20 {
            assert!(should_fire(FaultPoint::SocketWrite));
            assert!(!should_fire(FaultPoint::SlowRead));
        }
        assert_eq!(fired(FaultPoint::SocketWrite), 20);
        assert_eq!(fired(FaultPoint::SlowRead), 0);
        disarm();
    }

    #[test]
    fn rearming_resets_counters() {
        let _gate = serial();
        arm(FaultSchedule::new(3).at_hit(FaultPoint::IndexLoad, 1));
        assert!(should_fire(FaultPoint::IndexLoad));
        assert_eq!(fired(FaultPoint::IndexLoad), 1);
        arm(FaultSchedule::new(3).at_hit(FaultPoint::IndexLoad, 1));
        assert_eq!(fired(FaultPoint::IndexLoad), 0);
        assert!(should_fire(FaultPoint::IndexLoad));
        disarm();
    }

    #[test]
    fn spec_parses_seed_probabilities_and_hits() {
        let parsed = FaultSchedule::parse("seed=42, worker_panic=@3 ,socket_read=0.25").unwrap();
        let built = FaultSchedule::new(42)
            .at_hit(FaultPoint::WorkerPanic, 3)
            .probability(FaultPoint::SocketRead, 0.25);
        assert_eq!(parsed, built);
        assert!(FaultSchedule::parse("").unwrap().is_empty());
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultSchedule::parse("bogus_point=1").is_err());
        assert!(FaultSchedule::parse("socket_read").is_err());
        assert!(FaultSchedule::parse("socket_read=1.5").is_err());
        assert!(FaultSchedule::parse("socket_read=@0").is_err());
        assert!(FaultSchedule::parse("socket_read=@x").is_err());
        assert!(FaultSchedule::parse("seed=-1").is_err());
    }
}
