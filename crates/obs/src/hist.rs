//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] is a fixed array of atomic buckets over the full
//! `u64` range, laid out log-linearly: values below 16 get exact
//! single-value buckets, and every power-of-two octave above that is
//! split into 16 sub-buckets. Recording is one relaxed `fetch_add` per
//! sample (plus count/sum/min/max bookkeeping) — lock-free, safe from
//! any number of threads, and never loses a sample. Percentile
//! extraction walks the bucket array and returns the upper bound of the
//! bucket holding the requested rank, so the reported quantile is exact
//! to the bucket: relative error is at most `1/16` by construction.
//!
//! Units are the caller's business; the serve tier records microseconds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (16 → ≤ 1/16 relative error).
const SUB: usize = 16;
/// Total buckets: 16 exact low buckets + 16 per octave for octaves
/// `2^4..2^63`.
const BUCKETS: usize = SUB + 60 * SUB;

/// A concurrent log-bucketed histogram of `u64` samples.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let top = 63 - v.leading_zeros() as usize; // ≥ 4
            let sub = ((v >> (top - 4)) & 15) as usize;
            (top - 3) * SUB + sub
        }
    }

    /// The inclusive `[lo, hi]` value range of bucket `b`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        assert!(b < BUCKETS, "bucket index out of range");
        if b < SUB {
            (b as u64, b as u64)
        } else {
            let t = b / SUB + 3;
            let sub = (b % SUB) as u64;
            let lo = (SUB as u64 + sub) << (t - 4);
            let hi = lo + ((1u64 << (t - 4)) - 1);
            (lo, hi)
        }
    }

    /// Records one sample. Lock-free; relaxed atomics only.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping beyond `u64`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `num/den` quantile: the upper bound of the bucket holding
    /// the sample of rank `ceil(count · num / den)` (1-based), clamped
    /// to the observed maximum. Returns 0 for an empty histogram.
    ///
    /// The result lands in the same bucket as the exact order-statistic
    /// a sorted vector of the samples would give — the proptest oracle
    /// suite pins that contract.
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        assert!(num <= den && den > 0, "quantile must be in [0, 1]");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut cum = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                let (_, hi) = Self::bucket_bounds(b);
                return hi.min(self.max());
            }
        }
        self.max()
    }

    /// Median (`p50`).
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(999, 1000)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // every bucket's hi + 1 == next bucket's lo, starting at 0
        let mut expect_lo = 0u64;
        for b in 0..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(lo, expect_lo, "bucket {b} lower bound");
            assert!(hi >= lo);
            assert_eq!(Histogram::bucket_of(lo), b);
            assert_eq!(Histogram::bucket_of(hi), b);
            if hi == u64::MAX {
                assert_eq!(b, BUCKETS - 1);
                return;
            }
            expect_lo = hi + 1;
        }
        panic!("layout must end at u64::MAX");
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for b in SUB..BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            // width/lo = 1/16 exactly in every octave bucket
            assert!(hi - lo < lo / 8, "bucket {b}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            // quantile walking 16 uniform samples hits each exact bucket
            assert_eq!(Histogram::bucket_bounds(Histogram::bucket_of(v)), (v, v));
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), 120);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(777);
        for (n, d) in [(1, 100), (50, 100), (99, 100), (999, 1000), (1, 1)] {
            let q = h.quantile(n, d);
            assert_eq!(Histogram::bucket_of(q), Histogram::bucket_of(777));
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_no_samples() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..per {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per);
        let total: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(total, threads * per, "bucket mass must equal count");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The histogram quantile must land in the same bucket as the
        /// exact order statistic computed from a sorted vector.
        #[test]
        fn quantile_matches_sorted_vec_oracle(
            samples in prop::collection::vec(0u64..5_000_000, 1..400),
            num in 1u64..1000,
        ) {
            let den = 1000u64;
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((sorted.len() as u128 * num as u128)
                .div_ceil(den as u128) as usize).max(1);
            let oracle = sorted[rank - 1];
            let got = h.quantile(num, den);
            prop_assert_eq!(
                Histogram::bucket_of(got),
                Histogram::bucket_of(oracle),
                "q={}/{} got={} oracle={}", num, den, got, oracle
            );
            // and the reported value never exceeds the observed max
            prop_assert!(got <= *sorted.last().unwrap());
        }
    }
}
