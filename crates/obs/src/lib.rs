//! # lhcds-obs
//!
//! The observability substrate of the workspace: answers "where did this
//! run spend its time?", "what is p99 right now?", and — under test —
//! "what happens when this exact read fails?". Four primitives, std-only,
//! at the very bottom of the crate DAG (everything may depend on this
//! crate; it depends only on the workspace's vendored `rand` stand-ins,
//! which the seeded fault schedule needs):
//!
//! * [`trace`] — hierarchical phase tracing. RAII [`trace::Span`] guards
//!   over monotonic clocks, thread-safe child attribution (spans opened
//!   on worker threads attach to an explicit parent [`trace::SpanId`]),
//!   span-local counters, a rendered stderr tree, and deterministic JSON
//!   export. Gated behind one process-wide enable flag: with tracing off
//!   a span open/close touches no shared state beyond the single flag
//!   load, so instrumented hot paths cost nothing measurable.
//! * [`hist`] — log-bucketed latency [`hist::Histogram`]s: atomic
//!   buckets, lock-free recording from any number of threads, and
//!   p50/p99/p999 extraction exact to the bucket (≤ 1/16 relative
//!   error by construction).
//! * [`ring`] — a bounded [`ring::Ring`] buffer for discrete lifecycle
//!   facts (cache hits, slow queries), plus the process-wide event log
//!   that tracing drains into its JSON export.
//! * [`fault`] — deterministic fault injection: named
//!   [`fault::FaultPoint`]s armed by a seeded, reproducible
//!   [`fault::FaultSchedule`]; disarmed checks are the same single
//!   relaxed atomic load as a disabled span.
//!
//! # Example
//!
//! ```
//! lhcds_obs::set_tracing(true);
//! {
//!     let root = lhcds_obs::span("solve");
//!     let _child = lhcds_obs::span("enumerate");
//!     root.counter("cliques", 42);
//! }
//! let trace = lhcds_obs::take_trace().unwrap();
//! assert_eq!(trace.roots[0].name, "solve");
//! assert_eq!(trace.roots[0].children[0].name, "enumerate");
//! lhcds_obs::set_tracing(false);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod hist;
pub mod ring;
pub mod trace;

pub use hist::Histogram;
pub use ring::{Event, Ring};
pub use trace::{
    current, event, set_tracing, span, span_under, take_trace, tracing_enabled, Span, SpanId,
    SpanNode, Trace,
};
