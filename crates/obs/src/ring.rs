//! Bounded ring buffers for discrete lifecycle facts.
//!
//! A [`Ring`] keeps the most recent `capacity` items pushed into it and
//! a monotone total of everything ever pushed, so a reader can tell
//! "64 retained of 10 312 seen". The serve tier uses one for its
//! slow-query log; the process-wide [`Event`] ring behind
//! [`crate::trace::event`] uses another.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A bounded FIFO retaining the most recent items pushed.
#[derive(Debug)]
pub struct Ring<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    total: u64,
    buf: VecDeque<T>,
}

impl<T> Ring<T> {
    /// An empty ring retaining at most `capacity` (≥ 1) items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be positive");
        Ring {
            capacity,
            inner: Mutex::new(Inner {
                total: 0,
                buf: VecDeque::with_capacity(capacity),
            }),
        }
    }

    /// Appends an item, evicting the oldest when full. Returns the
    /// item's sequence number (0-based over everything ever pushed).
    pub fn push(&self, item: T) -> u64 {
        let mut inner = self.inner.lock().expect("ring poisoned");
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(item);
        let seq = inner.total;
        inner.total += 1;
        seq
    }

    /// Total items ever pushed (retained or evicted).
    pub fn total(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").total
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained items oldest-first, plus the total ever pushed.
    pub fn snapshot(&self) -> (u64, Vec<T>)
    where
        T: Clone,
    {
        let inner = self.inner.lock().expect("ring poisoned");
        (inner.total, inner.buf.iter().cloned().collect())
    }

    /// Drains and returns the retained items oldest-first; the total
    /// keeps counting.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("ring poisoned");
        inner.buf.drain(..).collect()
    }
}

/// One discrete lifecycle fact (cache hit, index rebuild, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// 0-based sequence number over the process lifetime of the trace.
    pub seq: u64,
    /// Which subsystem emitted it (`"graph-cache"`, `"index-cache"`…).
    pub kind: &'static str,
    /// Free-form detail, formatted only when tracing was enabled.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let r: Ring<u32> = Ring::new(4);
        assert!(r.is_empty());
        for i in 0..10 {
            assert_eq!(r.push(i), i as u64);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        let (total, items) = r.snapshot();
        assert_eq!(total, 10);
        assert_eq!(items, vec![6, 7, 8, 9], "oldest-first, most recent kept");
    }

    #[test]
    fn drain_empties_but_total_persists() {
        let r: Ring<u8> = Ring::new(2);
        r.push(1);
        r.push(2);
        assert_eq!(r.drain(), vec![1, 2]);
        assert!(r.is_empty());
        assert_eq!(r.total(), 2);
        r.push(3);
        assert_eq!(r.snapshot(), (3, vec![3]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u8>::new(0);
    }

    #[test]
    fn concurrent_pushes_all_counted() {
        let r = std::sync::Arc::new(Ring::new(8));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..100u32 {
                        r.push(i);
                    }
                });
            }
        });
        assert_eq!(r.total(), 400);
        assert_eq!(r.len(), 8);
    }
}
