//! Hierarchical phase tracing.
//!
//! A trace is a forest of spans. Opening a [`Span`] (via [`span`] or,
//! from a worker thread, [`span_under`]) records a node in a
//! process-wide arena; dropping the guard closes it with its elapsed
//! monotonic time. Parentage comes from a thread-local span stack, so
//! same-thread nesting is automatic, and cross-thread children attach
//! by passing the parent's [`SpanId`] into the spawned closure —
//! attribution stays correct under work-stealing waves.
//!
//! Everything is gated behind one process-wide flag ([`set_tracing`]).
//! Disabled, a span open/close performs exactly one relaxed atomic
//! load and a monotonic clock read (the clock read backs
//! [`Span::elapsed_ms`], which callers use for stats fields whether or
//! not tracing is on); no allocation, no locking, no shared-state
//! writes. The bench harness's `obs` experiment pins that cost below
//! 1% of pipeline wall time.
//!
//! [`take_trace`] drains the arena into a [`Trace`]: a tree with
//! per-span durations and counters plus the drained event log, a
//! human-readable stderr rendering ([`Trace::render`]), and a
//! deterministic JSON export ([`Trace::to_json`]) — fixed key order,
//! integers only, counters sorted by name.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::ring::{Event, Ring};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Capacity of the process-wide event ring.
const EVENT_CAPACITY: usize = 256;

struct Node {
    name: &'static str,
    parent: Option<usize>,
    start_ns: u64,
    dur_ns: Option<u64>,
    counters: Vec<(&'static str, u64)>,
}

struct Arena {
    epoch: Instant,
    nodes: Vec<Node>,
}

fn arena() -> &'static Mutex<Arena> {
    static ARENA: OnceLock<Mutex<Arena>> = OnceLock::new();
    ARENA.get_or_init(|| {
        Mutex::new(Arena {
            epoch: Instant::now(),
            nodes: Vec::new(),
        })
    })
}

fn events() -> &'static Ring<Event> {
    static EVENTS: OnceLock<Ring<Event>> = OnceLock::new();
    EVENTS.get_or_init(|| Ring::new(EVENT_CAPACITY))
}

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Turns tracing on or off process-wide. Turning it on starts a fresh
/// trace: any spans or events from a previous epoch are discarded.
pub fn set_tracing(on: bool) {
    if on {
        let mut a = arena().lock().expect("trace arena poisoned");
        a.nodes.clear();
        a.epoch = Instant::now();
        drop(a);
        events().drain();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether tracing is currently enabled. One relaxed load.
#[inline]
pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An opaque reference to an open span, for cross-thread child
/// attribution. Copyable and sendable; resolves to "no parent" when it
/// was taken while tracing was disabled.
#[derive(Debug, Clone, Copy)]
pub struct SpanId(Option<usize>);

/// The innermost span open on *this* thread (the would-be parent of
/// the next [`span`] call). Capture it before spawning workers and
/// hand it to [`span_under`] inside them.
pub fn current() -> SpanId {
    if !tracing_enabled() {
        return SpanId(None);
    }
    SpanId(STACK.with(|s| s.borrow().last().copied()))
}

/// An RAII phase guard. Created by [`span`] / [`span_under`]; the
/// phase closes when the guard drops.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    start: Instant,
    id: Option<usize>,
}

/// Opens a span named `name` under the innermost span open on this
/// thread (or as a root). With tracing disabled this is a no-op guard:
/// the enable flag is checked before any shared state is touched.
pub fn span(name: &'static str) -> Span {
    let start = Instant::now();
    if !tracing_enabled() {
        return Span { start, id: None };
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    open(name, parent, start)
}

/// Opens a span named `name` as a child of `parent` — the cross-thread
/// form: capture [`current`] before spawning, call this inside the
/// worker.
pub fn span_under(parent: SpanId, name: &'static str) -> Span {
    let start = Instant::now();
    if !tracing_enabled() {
        return Span { start, id: None };
    }
    open(name, parent.0, start)
}

fn open(name: &'static str, parent: Option<usize>, start: Instant) -> Span {
    let mut a = arena().lock().expect("trace arena poisoned");
    let start_ns = start.saturating_duration_since(a.epoch).as_nanos() as u64;
    let id = a.nodes.len();
    a.nodes.push(Node {
        name,
        parent,
        start_ns,
        dur_ns: None,
        counters: Vec::new(),
    });
    drop(a);
    STACK.with(|s| s.borrow_mut().push(id));
    Span {
        start,
        id: Some(id),
    }
}

impl Span {
    /// This span's id, for parenting children opened on other threads.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Milliseconds since the span opened. Works with tracing disabled
    /// too — this is the one-clock replacement for ad-hoc
    /// `Instant::now()` stage timing.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Adds `value` to the span-local counter `name` (created at 0).
    /// No-op with tracing disabled.
    pub fn counter(&self, name: &'static str, value: u64) {
        let Some(id) = self.id else { return };
        let mut a = arena().lock().expect("trace arena poisoned");
        // the arena may have been reset under us by set_tracing(true)
        let Some(node) = a.nodes.get_mut(id) else {
            return;
        };
        match node.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += value,
            None => node.counters.push((name, value)),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        let dur = self.start.elapsed().as_nanos() as u64;
        if let Ok(mut a) = arena().lock() {
            if let Some(node) = a.nodes.get_mut(id) {
                node.dur_ns = Some(dur);
            }
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&x| x == id) {
                s.remove(pos);
            }
        });
    }
}

/// Records a discrete lifecycle fact into the process-wide event ring.
/// `detail` is only invoked (and the string only built) when tracing is
/// enabled, so disabled call sites pay one flag load.
pub fn event<F: FnOnce() -> String>(kind: &'static str, detail: F) {
    if !tracing_enabled() {
        return;
    }
    let ring = events();
    let seq = ring.total();
    ring.push(Event {
        seq,
        kind,
        detail: detail(),
    });
}

/// One span in a drained [`Trace`], children in open order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name.
    pub name: &'static str,
    /// Nanoseconds from the trace epoch to the span opening.
    pub start_ns: u64,
    /// Nanoseconds the span was open (elapsed-so-far if never closed).
    pub dur_ns: u64,
    /// Span-local counters, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Child spans.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Sum of direct children's durations.
    pub fn child_ns(&self) -> u64 {
        self.children.iter().map(|c| c.dur_ns).sum()
    }
}

/// A drained trace: root spans plus the event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Top-level spans in open order.
    pub roots: Vec<SpanNode>,
    /// Drained lifecycle events, oldest first.
    pub events: Vec<Event>,
}

/// Drains the trace arena and event ring. Returns `None` when nothing
/// was recorded (tracing never enabled, or already drained).
pub fn take_trace() -> Option<Trace> {
    let nodes: Vec<Node> = {
        let mut a = arena().lock().expect("trace arena poisoned");
        let now_ns = a.epoch.elapsed().as_nanos() as u64;
        let mut nodes = std::mem::take(&mut a.nodes);
        for n in &mut nodes {
            if n.dur_ns.is_none() {
                n.dur_ns = Some(now_ns.saturating_sub(n.start_ns));
            }
        }
        nodes
    };
    let events = events().drain();
    if nodes.is_empty() && events.is_empty() {
        return None;
    }
    // arena order is open order; build the forest bottom-up
    let mut built: Vec<Option<SpanNode>> = nodes
        .iter()
        .map(|n| {
            let mut counters = n.counters.clone();
            counters.sort_by_key(|(name, _)| *name);
            Some(SpanNode {
                name: n.name,
                start_ns: n.start_ns,
                dur_ns: n.dur_ns.unwrap_or(0),
                counters,
                children: Vec::new(),
            })
        })
        .collect();
    let mut roots = Vec::new();
    for i in (0..nodes.len()).rev() {
        let node = built[i].take().expect("taken once");
        match nodes[i].parent {
            // children were collected in reverse; restore open order
            Some(p) if p < i => {
                let parent = built[p].as_mut().expect("parent outlives child index");
                parent.children.insert(0, node);
            }
            _ => roots.push(node),
        }
    }
    roots.reverse();
    Some(Trace { roots, events })
}

impl Trace {
    /// Deterministic JSON export: `{"spans":[…],"events":[…]}` with
    /// fixed key order, integer nanoseconds, counters sorted by name.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"spans\":[");
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span_json(root, &mut out);
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"seq\":");
            out.push_str(&e.seq.to_string());
            out.push_str(",\"kind\":");
            json_string(e.kind, &mut out);
            out.push_str(",\"detail\":");
            json_string(&e.detail, &mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Human-readable tree for stderr. Same-name siblings are
    /// aggregated (`flow-ladder ×37`) with summed durations and
    /// counters, so wave-parallel phases stay one line each.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let groups = aggregate(&self.roots);
        for g in &groups {
            render_group(g, 0, &mut out);
        }
        if !self.events.is_empty() {
            out.push_str(&format!("events ({}):\n", self.events.len()));
            for e in &self.events {
                out.push_str(&format!("  [{}] {}: {}\n", e.seq, e.kind, e.detail));
            }
        }
        out
    }
}

fn span_json(node: &SpanNode, out: &mut String) {
    out.push_str("{\"name\":");
    json_string(node.name, out);
    out.push_str(",\"start_ns\":");
    out.push_str(&node.start_ns.to_string());
    out.push_str(",\"dur_ns\":");
    out.push_str(&node.dur_ns.to_string());
    out.push_str(",\"counters\":{");
    for (i, (k, v)) in node.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(k, out);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("},\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_json(c, out);
    }
    out.push_str("]}");
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Same-name siblings merged: count, summed duration and counters,
/// recursively aggregated children.
struct Group {
    name: &'static str,
    count: usize,
    dur_ns: u64,
    counters: Vec<(&'static str, u64)>,
    children: Vec<Group>,
}

fn aggregate(siblings: &[SpanNode]) -> Vec<Group> {
    let mut groups: Vec<(&'static str, Vec<&SpanNode>)> = Vec::new();
    for s in siblings {
        match groups.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, members)) => members.push(s),
            None => groups.push((s.name, vec![s])),
        }
    }
    groups
        .into_iter()
        .map(|(name, members)| {
            let mut counters: Vec<(&'static str, u64)> = Vec::new();
            let mut grandchildren: Vec<SpanNode> = Vec::new();
            for m in &members {
                for &(k, v) in &m.counters {
                    match counters.iter_mut().find(|(n, _)| *n == k) {
                        Some((_, sum)) => *sum += v,
                        None => counters.push((k, v)),
                    }
                }
                grandchildren.extend(m.children.iter().cloned());
            }
            counters.sort_by_key(|(n, _)| *n);
            Group {
                name,
                count: members.len(),
                dur_ns: members.iter().map(|m| m.dur_ns).sum(),
                counters,
                children: aggregate(&grandchildren),
            }
        })
        .collect()
}

fn render_group(g: &Group, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(g.name);
    if g.count > 1 {
        out.push_str(&format!(" ×{}", g.count));
    }
    out.push_str(&format!(" {:.2}ms", g.dur_ns as f64 / 1e6));
    for (k, v) in &g.counters {
        out.push_str(&format!(" {k}={v}"));
    }
    out.push('\n');
    for c in &g.children {
        render_group(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; every test in this module runs
    /// under one lock so enable/drain epochs never interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        set_tracing(false);
        let s = span("never");
        s.counter("x", 1);
        event("never", || "unreached".into());
        assert!(s.elapsed_ms() >= 0.0);
        drop(s);
        assert!(take_trace().is_none());
    }

    #[test]
    fn nesting_follows_the_thread_stack() {
        let _g = serial();
        set_tracing(true);
        {
            let root = span("root");
            root.counter("k", 2);
            root.counter("k", 3);
            {
                let _a = span("a");
                let _deeper = span("deep");
            }
            let _b = span("b");
        }
        set_tracing(false);
        let t = take_trace().expect("trace recorded");
        assert_eq!(t.roots.len(), 1);
        let root = &t.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.counters, vec![("k", 5)]);
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(root.children[0].children[0].name, "deep");
    }

    #[test]
    fn cross_thread_children_attach_to_the_given_parent() {
        let _g = serial();
        set_tracing(true);
        {
            let root = span("wave");
            let ctx = root.id();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(move || {
                        let w = span_under(ctx, "worker");
                        w.counter("items", 1);
                    });
                }
            });
        }
        set_tracing(false);
        let t = take_trace().expect("trace recorded");
        assert_eq!(t.roots.len(), 1, "workers must not become roots");
        let root = &t.roots[0];
        assert_eq!(root.children.len(), 3);
        assert!(root.children.iter().all(|c| c.name == "worker"));
        // the render aggregates the three workers into one line
        let rendered = t.render();
        assert!(rendered.contains("worker ×3"), "{rendered}");
        assert!(rendered.contains("items=3"), "{rendered}");
    }

    #[test]
    fn events_are_recorded_and_drained() {
        let _g = serial();
        set_tracing(true);
        event("cache", || "Hit a.txt".into());
        event("cache", || "Built b.txt".into());
        set_tracing(false);
        let t = take_trace().expect("events recorded");
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].kind, "cache");
        assert_eq!(t.events[0].seq, 0);
        assert_eq!(t.events[1].detail, "Built b.txt");
        assert!(take_trace().is_none(), "drained");
    }

    #[test]
    fn json_export_is_deterministic_and_parseable_shape() {
        let _g = serial();
        set_tracing(true);
        {
            let root = span("solve");
            root.counter("b", 1);
            root.counter("a", 2);
            let _c = span("child");
        }
        event("sys", || "up \"quoted\"".into());
        set_tracing(false);
        let t = take_trace().expect("trace recorded");
        let json = t.to_json();
        assert!(json.starts_with("{\"spans\":["));
        // counters sorted by name regardless of insertion order
        assert!(json.contains("\"counters\":{\"a\":2,\"b\":1}"), "{json}");
        assert!(json.contains("\"name\":\"child\""));
        assert!(json.contains("\"detail\":\"up \\\"quoted\\\"\""), "{json}");
        // span-tree invariant the CI step relies on
        assert!(t.roots[0].child_ns() <= t.roots[0].dur_ns);
    }

    #[test]
    fn enabling_resets_the_previous_epoch() {
        let _g = serial();
        set_tracing(true);
        let _ = span("old");
        set_tracing(true); // fresh epoch
        {
            let _s = span("new");
        }
        set_tracing(false);
        let t = take_trace().expect("trace recorded");
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.roots[0].name, "new");
    }

    #[test]
    fn unclosed_spans_report_elapsed_so_far() {
        let _g = serial();
        set_tracing(true);
        let s = span("open");
        std::thread::sleep(std::time::Duration::from_millis(2));
        set_tracing(false);
        let t = take_trace().expect("trace recorded");
        assert_eq!(t.roots[0].name, "open");
        assert!(t.roots[0].dur_ns > 0);
        drop(s); // drop after drain: must not panic
    }
}
