//! Arbitrary user-defined patterns (§5's "more general patterns").
//!
//! A [`CustomPattern`] is any small connected graph given as an edge
//! list on `0..k` vertices (`k ≤ 8`). Instances are enumerated as
//! non-induced embeddings modulo the pattern's automorphism group —
//! the same convention as the built-in patterns of
//! [`crate::enumerate`] — by ordered backtracking over the host graph
//! with a canonical-orbit filter: an embedding tuple is emitted only if
//! it is the lexicographically smallest member of its automorphism
//! orbit, so each instance appears exactly once.
//!
//! The resulting instance store plugs into the IPPV pipeline unchanged,
//! which is what makes the paper's claim — the framework extends to
//! *any* pattern, directed/attributed models aside — concrete: a
//! five-vertex "bowtie", a "house", or a 6-cycle work out of the box
//! (see the tests).

use lhcds_clique::{par_collect_blocks, CliqueSet, Parallelism};
use lhcds_core::pipeline::{top_k_with_instances, IppvConfig, IppvResult};
use lhcds_graph::{CsrGraph, VertexId};

/// A user-defined pattern: a connected graph on `k ≤ 8` vertices.
#[derive(Debug, Clone)]
pub struct CustomPattern {
    k: usize,
    /// Adjacency matrix (symmetric, no loops).
    adj: [[bool; 8]; 8],
    edges: Vec<(usize, usize)>,
    /// All automorphisms (permutations of `0..k` preserving edges).
    automorphisms: Vec<[u8; 8]>,
    name: String,
}

impl CustomPattern {
    /// Builds a pattern from its edge list on vertices `0..k`.
    ///
    /// # Errors
    /// Returns a message when `k` is out of range `2..=8`, an edge
    /// endpoint is out of range, an edge is a loop, or the pattern
    /// graph is disconnected.
    pub fn new(
        name: impl Into<String>,
        k: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, String> {
        if !(2..=8).contains(&k) {
            return Err(format!("pattern arity {k} outside 2..=8"));
        }
        let mut adj = [[false; 8]; 8];
        let mut list = Vec::new();
        for &(a, b) in edges {
            if a >= k || b >= k {
                return Err(format!("edge ({a}, {b}) outside 0..{k}"));
            }
            if a == b {
                return Err(format!("loop at {a}"));
            }
            if !adj[a][b] {
                adj[a][b] = true;
                adj[b][a] = true;
                list.push((a.min(b), a.max(b)));
            }
        }
        // connectivity of the pattern graph
        let mut seen = vec![false; k];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for w in 0..k {
                if adj[v][w] && !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("pattern must be connected".into());
        }

        // automorphisms by brute force over permutations (k ≤ 8)
        let mut automorphisms = Vec::new();
        let mut perm: Vec<u8> = (0..k as u8).collect();
        permute_all(&mut perm, k, &mut |p| {
            let ok = (0..k).all(|a| (0..k).all(|b| adj[a][b] == adj[p[a] as usize][p[b] as usize]));
            if ok {
                let mut arr = [0u8; 8];
                arr[..k].copy_from_slice(p);
                automorphisms.push(arr);
            }
        });
        Ok(CustomPattern {
            k,
            adj,
            edges: list,
            automorphisms,
            name: name.into(),
        })
    }

    /// Pattern name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern vertices.
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Size of the automorphism group.
    pub fn automorphism_count(&self) -> usize {
        self.automorphisms.len()
    }

    /// Enumerates every instance in `g` into an instance store.
    pub fn enumerate(&self, g: &CsrGraph) -> CliqueSet {
        self.enumerate_with(g, &Parallelism::serial())
    }

    /// Same as [`CustomPattern::enumerate`] with an explicit thread
    /// policy.
    ///
    /// The depth-0 anchor scan (pattern vertex 0 has no earlier
    /// neighbor, so the serial backtracker sweeps every host vertex in
    /// ascending order) is sharded into contiguous vertex blocks over
    /// scoped workers, each with private backtracking state; per-block
    /// buffers merge in block order, so the store is byte-identical to
    /// the serial enumeration for every policy.
    pub fn enumerate_with(&self, g: &CsrGraph, par: &Parallelism) -> CliqueSet {
        let threads = par.effective_threads(g.n());
        let flat = par_collect_blocks(g.n(), threads, |roots, flat| {
            let mut assignment = vec![0 as VertexId; self.k];
            let mut used = vec![false; g.n()];
            for w in roots {
                self.try_assign(g, 0, w as VertexId, &mut assignment, &mut used, flat);
            }
        });
        CliqueSet::from_flat_members(g.n(), self.k, flat)
    }

    fn backtrack(
        &self,
        g: &CsrGraph,
        depth: usize,
        assignment: &mut [VertexId],
        used: &mut [bool],
        flat: &mut Vec<VertexId>,
    ) {
        if depth == self.k {
            if self.is_canonical(assignment) {
                flat.extend_from_slice(assignment);
            }
            return;
        }
        // candidates: neighbors of an already-assigned pattern-neighbor
        // when one exists (connectivity makes this hold for depth ≥ 1
        // under a connected ordering; pattern vertices are tried in
        // natural order, and patterns are connected, but vertex d may
        // have no earlier neighbor — fall back to a full scan then).
        let anchor = (0..depth).find(|&e| self.adj[e][depth]);
        match anchor {
            Some(e) => {
                let base = assignment[e];
                for &w in g.neighbors(base) {
                    self.try_assign(g, depth, w, assignment, used, flat);
                }
            }
            None => {
                for w in g.vertices() {
                    self.try_assign(g, depth, w, assignment, used, flat);
                }
            }
        }
    }

    fn try_assign(
        &self,
        g: &CsrGraph,
        depth: usize,
        w: VertexId,
        assignment: &mut [VertexId],
        used: &mut [bool],
        flat: &mut Vec<VertexId>,
    ) {
        if used[w as usize] {
            return;
        }
        // all pattern edges into earlier vertices must exist
        for (e, &img) in assignment.iter().enumerate().take(depth) {
            if self.adj[e][depth] && !g.has_edge(img, w) {
                return;
            }
        }
        assignment[depth] = w;
        used[w as usize] = true;
        self.backtrack(g, depth + 1, assignment, used, flat);
        used[w as usize] = false;
    }

    /// Whether `assignment` is the lexicographically smallest tuple in
    /// its automorphism orbit.
    fn is_canonical(&self, assignment: &[VertexId]) -> bool {
        let mut image = [0 as VertexId; 8];
        for auto in &self.automorphisms {
            // image[i] = assignment at the preimage of i:
            // tuple ∘ σ — position i holds assignment[σ(i)]
            for i in 0..self.k {
                image[i] = assignment[auto[i] as usize];
            }
            if image[..self.k] < *assignment {
                return false;
            }
        }
        true
    }

    /// Exact count of instances (embeddings / automorphisms).
    pub fn count(&self, g: &CsrGraph) -> u64 {
        self.enumerate(g).len() as u64
    }

    /// Edge list of the pattern (each pair once, ascending).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Stable persistence key: `custom.<fnv>` where `<fnv>` is the
    /// FNV-1a-64 hash (hex) of the arity and the canonical ascending
    /// edge list. Two structurally identical edge lists share a key
    /// regardless of the display name.
    pub fn key(&self) -> String {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u8| {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        };
        eat(self.k as u8);
        let mut canon = self.edges.clone();
        canon.sort_unstable();
        for (a, b) in canon {
            eat(a as u8);
            eat(b as u8);
        }
        format!("custom.{hash:016x}")
    }
}

fn permute_all(perm: &mut [u8], k: usize, f: &mut impl FnMut(&[u8])) {
    fn heap(perm: &mut [u8], m: usize, k: usize, f: &mut impl FnMut(&[u8])) {
        if m == 1 {
            f(&perm[..k]);
            return;
        }
        for i in 0..m {
            heap(perm, m - 1, k, f);
            if m.is_multiple_of(2) {
                perm.swap(i, m - 1);
            } else {
                perm.swap(0, m - 1);
            }
        }
    }
    heap(perm, k, k, f);
}

/// Runs the IPPV pipeline on a custom pattern: the top-k locally
/// `pattern`-densest subgraphs of `g`.
///
/// Instance enumeration honors `cfg.parallelism` (byte-identical store
/// at every thread count); the pipeline itself scales with the same
/// knob.
pub fn top_k_custom(
    g: &CsrGraph,
    pattern: &CustomPattern,
    k: usize,
    cfg: &IppvConfig,
) -> IppvResult {
    let store = pattern.enumerate_with(g, &cfg.parallelism);
    top_k_with_instances(g, &store, k, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_pattern;
    use crate::pattern::Pattern;
    use lhcds_graph::GraphBuilder;

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn rejects_malformed_patterns() {
        assert!(CustomPattern::new("too-big", 9, &[]).is_err());
        assert!(CustomPattern::new("loop", 3, &[(0, 0), (0, 1), (1, 2)]).is_err());
        assert!(CustomPattern::new("range", 3, &[(0, 5)]).is_err());
        assert!(CustomPattern::new("disconnected", 4, &[(0, 1), (2, 3)]).is_err());
    }

    #[test]
    fn automorphism_groups_are_correct() {
        let tri = CustomPattern::new("triangle", 3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(tri.automorphism_count(), 6);
        let path = CustomPattern::new("p4", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(path.automorphism_count(), 2);
        let c4 = CustomPattern::new("c4", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_eq!(c4.automorphism_count(), 8);
        let star = CustomPattern::new("s3", 4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(star.automorphism_count(), 6);
    }

    type PatternSpec = (&'static str, Pattern, &'static [(usize, usize)]);

    /// The custom enumerator must agree with the specialized built-in
    /// enumerators on every 4-vertex pattern.
    #[test]
    fn matches_builtin_enumerators() {
        let specs: [PatternSpec; 6] = [
            ("3-star", Pattern::Star3, &[(0, 1), (0, 2), (0, 3)]),
            ("4-path", Pattern::Path4, &[(0, 1), (1, 2), (2, 3)]),
            (
                "c3-star",
                Pattern::TailedTriangle,
                &[(0, 1), (1, 2), (2, 0), (2, 3)],
            ),
            ("4-loop", Pattern::Cycle4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            (
                "2-triangle",
                Pattern::Diamond,
                &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
            ),
            (
                "4-clique",
                Pattern::Clique4,
                &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            ),
        ];
        let mut state = 0xFEEDu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..8 {
            let n = 9;
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for u in 0..n {
                for v in u + 1..n {
                    if rng() % 2 == 0 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            for (name, builtin, edges) in &specs {
                let custom = CustomPattern::new(*name, 4, edges).unwrap();
                assert_eq!(
                    custom.count(&g),
                    enumerate_pattern(&g, *builtin).len() as u64,
                    "trial {trial}: {name}"
                );
            }
        }
    }

    #[test]
    fn keys_ignore_name_and_edge_order() {
        let a = CustomPattern::new("a", 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = CustomPattern::new("b", 4, &[(2, 3), (1, 0), (1, 2)]).unwrap();
        assert_eq!(a.key(), b.key(), "same structure must share a key");
        assert!(a.key().starts_with("custom."));
        let c = CustomPattern::new("c", 4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert_ne!(a.key(), c.key(), "different structure, different key");
    }

    #[test]
    fn five_vertex_patterns_count_on_complete_graphs() {
        // bowtie: two triangles sharing a vertex; |Aut| = 8
        let bowtie = CustomPattern::new(
            "bowtie",
            5,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        )
        .unwrap();
        assert_eq!(bowtie.automorphism_count(), 8);
        // embeddings in K5: 5!/|Aut| per 5-subset = 120/8 = 15
        assert_eq!(bowtie.count(&complete(5)), 15);

        // 5-cycle: |Aut| = 10; embeddings in K5 = 120/10 = 12
        let c5 = CustomPattern::new("c5", 5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(c5.automorphism_count(), 10);
        assert_eq!(c5.count(&complete(5)), 12);

        // house: C5 with one chord (roof): |Aut| = 2
        let house = CustomPattern::new(
            "house",
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)],
        )
        .unwrap();
        assert_eq!(house.automorphism_count(), 2);
        assert_eq!(house.count(&complete(5)), 60);
    }

    #[test]
    fn pipeline_runs_on_custom_pattern() {
        // bowtie-dense region (K5) + a plain bowtie elsewhere
        let mut b = GraphBuilder::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(5, 6).add_edge(6, 7).add_edge(7, 5);
        b.add_edge(7, 8).add_edge(8, 9).add_edge(9, 7);
        let g = b.build();
        let bowtie = CustomPattern::new(
            "bowtie",
            5,
            &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
        )
        .unwrap();
        let res = top_k_custom(&g, &bowtie, 5, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3, 4]);
        assert_eq!(res.subgraphs[0].density, lhcds_core::Ratio::new(15, 5));
        assert_eq!(res.subgraphs[1].vertices, vec![5, 6, 7, 8, 9]);
        assert_eq!(res.subgraphs[1].density, lhcds_core::Ratio::new(1, 5));
    }

    #[test]
    fn six_cycle_pattern() {
        let c6 =
            CustomPattern::new("c6", 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(c6.automorphism_count(), 12);
        // a single 6-cycle hosts exactly one instance
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(c6.count(&g), 1);
        // K6: 6!/12 = 60
        assert_eq!(c6.count(&complete(6)), 60);
    }
}
