//! Pattern-instance enumeration.
//!
//! Every enumerator emits each instance exactly once (embeddings modulo
//! pattern automorphism) into a [`CliqueSet`]-shaped store, which is
//! all the IPPV pipeline needs: membership lists plus a per-vertex
//! incidence index. Canonicalization strategies:
//!
//! * **3-star** — center explicit, leaves as an ascending triple;
//! * **4-path** — inner edge ordered (`b < c`);
//! * **c3-star** (tailed triangle) — triangle ascending, anchored
//!   pendant; the same vertex set contributes one instance per distinct
//!   (triangle, attachment) embedding;
//! * **4-loop** — lowest vertex first, its two cycle-neighbors ordered;
//! * **2-triangle** (diamond) — hinge edge ordered, apexes ascending;
//! * cliques — ascending by construction (kClist).
//!
//! ## Parallel enumeration
//!
//! Every bespoke enumerator is written as a *block emitter* over its
//! natural outer axis — vertices (3-star, 4-loop), the materialized
//! edge list (4-path, 2-triangle), or a pre-enumerated triangle store
//! (c3-star) — and sharded through
//! [`lhcds_clique::par_collect_blocks`]: contiguous index blocks are
//! claimed by scoped workers, each block fills its own flat buffer, and
//! the buffers are concatenated in ascending block order. Since the
//! serial path runs the *same* emitter over the single full-range
//! block, the merged member slab — and hence the whole [`CliqueSet`]
//! (instance ids, incidence index) — is byte-identical to serial at
//! every thread count.

use std::ops::Range;

use crate::pattern::Pattern;
use lhcds_clique::{par_collect_blocks, CliqueSet, Parallelism};
use lhcds_graph::{CsrGraph, VertexId};

/// Enumerates every instance of `pattern` in `g` into an instance
/// store (flat member lists plus incidence index).
pub fn enumerate_pattern(g: &CsrGraph, pattern: Pattern) -> CliqueSet {
    enumerate_pattern_with(g, pattern, &Parallelism::serial())
}

/// Same as [`enumerate_pattern`] with an explicit thread policy.
///
/// Clique-shaped patterns delegate to the (optionally node-parallel)
/// kClist enumerator; the bespoke non-clique enumerators shard their
/// outer loop into contiguous blocks merged in rank order. Either way
/// the store is byte-identical to the serial enumeration for every
/// policy — only wall time depends on `par`.
pub fn enumerate_pattern_with(g: &CsrGraph, pattern: Pattern, par: &Parallelism) -> CliqueSet {
    let threads = par.effective_threads(g.n());
    let flat = match pattern {
        Pattern::Edge => return CliqueSet::enumerate_with(g, 2, par),
        Pattern::Triangle => return CliqueSet::enumerate_with(g, 3, par),
        Pattern::Clique(h) => return CliqueSet::enumerate_with(g, h, par),
        Pattern::Clique4 => return CliqueSet::enumerate_with(g, 4, par),
        Pattern::Star3 => par_collect_blocks(g.n(), threads, |centers, flat| {
            star3_block(g, centers, flat)
        }),
        Pattern::Path4 => {
            let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
            par_collect_blocks(edges.len(), threads, |es, flat| {
                path4_block(g, &edges[es], flat)
            })
        }
        Pattern::TailedTriangle => {
            // anchor-clique sharding: triangles come from the (itself
            // deterministically parallel) kClist store, in emission order
            let tris = CliqueSet::enumerate_with(g, 3, par);
            par_collect_blocks(tris.len(), threads, |ts, flat| {
                tailed_triangle_block(g, &tris, ts, flat)
            })
        }
        Pattern::Cycle4 => {
            par_collect_blocks(g.n(), threads, |mins, flat| cycle4_block(g, mins, flat))
        }
        Pattern::Diamond => {
            let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
            par_collect_blocks(edges.len(), threads, |es, flat| {
                diamond_block(g, &edges[es], flat)
            })
        }
    };
    CliqueSet::from_flat_members(g.n(), pattern.arity(), flat)
}

/// 3-stars centered on a contiguous block of vertices.
fn star3_block(g: &CsrGraph, centers: Range<usize>, flat: &mut Vec<VertexId>) {
    for c in centers {
        let c = c as VertexId;
        let ns = g.neighbors(c);
        let d = ns.len();
        for i in 0..d {
            for j in i + 1..d {
                for l in j + 1..d {
                    flat.extend_from_slice(&[c, ns[i], ns[j], ns[l]]);
                }
            }
        }
    }
}

/// 4-paths whose inner edge lies in a block of the edge list.
fn path4_block(g: &CsrGraph, edges: &[(VertexId, VertexId)], flat: &mut Vec<VertexId>) {
    for &(b, c) in edges {
        // b < c by `edges` convention
        for &a in g.neighbors(b) {
            if a == c {
                continue;
            }
            for &d in g.neighbors(c) {
                if d == b || d == a {
                    continue;
                }
                flat.extend_from_slice(&[a, b, c, d]);
            }
        }
    }
}

/// Tailed triangles anchored on a contiguous block of store triangles.
fn tailed_triangle_block(
    g: &CsrGraph,
    tris: &CliqueSet,
    ts: Range<usize>,
    flat: &mut Vec<VertexId>,
) {
    for t in ts {
        let m = tris.members(t);
        let mut tri = [m[0], m[1], m[2]];
        tri.sort_unstable();
        for &v in &tri {
            for &w in g.neighbors(v) {
                if !tri.contains(&w) {
                    flat.extend_from_slice(&[tri[0], tri[1], tri[2], w]);
                }
            }
        }
    }
}

/// 4-loops whose minimum vertex lies in a contiguous vertex block.
fn cycle4_block(g: &CsrGraph, mins: Range<usize>, flat: &mut Vec<VertexId>) {
    for a in mins {
        let a = a as VertexId;
        let ns = g.neighbors(a);
        for (i, &b) in ns.iter().enumerate() {
            if b < a {
                continue;
            }
            for &d in &ns[i + 1..] {
                if d < a {
                    continue;
                }
                // common neighbors of b and d, other than a and
                // greater than a (a must be the cycle minimum)
                for &c in g.neighbors(b) {
                    if c > a && c != d && c != b && g.has_edge(c, d) {
                        flat.extend_from_slice(&[a, b, c, d]);
                    }
                }
            }
        }
    }
}

/// Diamonds whose hinge edge lies in a block of the edge list.
fn diamond_block(g: &CsrGraph, edges: &[(VertexId, VertexId)], flat: &mut Vec<VertexId>) {
    for &(x, y) in edges {
        let nx = g.neighbors(x);
        let ny = g.neighbors(y);
        // ascending common neighbors via sorted merge
        let (mut i, mut j) = (0usize, 0usize);
        let mut common: Vec<VertexId> = Vec::new();
        while i < nx.len() && j < ny.len() {
            match nx[i].cmp(&ny[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common.push(nx[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        for (i, &u) in common.iter().enumerate() {
            for &v in &common[i + 1..] {
                flat.extend_from_slice(&[x, y, u, v]);
            }
        }
    }
}

/// Total instance count (`|Ψhx(G)|`).
pub fn count_pattern(g: &CsrGraph, pattern: Pattern) -> u64 {
    enumerate_pattern(g, pattern).len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_graph::GraphBuilder;

    fn complete(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for u in 0..n as u32 {
            for v in u + 1..n as u32 {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    fn binomial(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        (0..k).fold(1u64, |r, i| r * (n - i) / (i + 1))
    }

    /// Closed-form motif counts on Kn (embeddings / automorphisms):
    /// star3 = n·C(n−1, 3); path4 = 4!/2 · C(n, 4) · … — easier: every
    /// 4-subset of Kn hosts 12 paths, 3 cycles, 6 diamonds, 12 tailed
    /// triangles, 4 stars, 1 clique.
    #[test]
    fn counts_on_k5_match_closed_forms() {
        let g = complete(5);
        let c4 = binomial(5, 4); // 5 four-subsets
        assert_eq!(count_pattern(&g, Pattern::Star3), 4 * c4);
        assert_eq!(count_pattern(&g, Pattern::Path4), 12 * c4);
        assert_eq!(count_pattern(&g, Pattern::TailedTriangle), 12 * c4);
        assert_eq!(count_pattern(&g, Pattern::Cycle4), 3 * c4);
        assert_eq!(count_pattern(&g, Pattern::Diamond), 6 * c4);
        assert_eq!(count_pattern(&g, Pattern::Clique4), c4);
    }

    #[test]
    fn counts_on_specific_small_graphs() {
        // a pure 4-cycle
        let c4 = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_pattern(&c4, Pattern::Cycle4), 1);
        assert_eq!(count_pattern(&c4, Pattern::Path4), 4);
        assert_eq!(count_pattern(&c4, Pattern::Diamond), 0);
        assert_eq!(count_pattern(&c4, Pattern::Star3), 0);

        // a star with 4 leaves: C(4,3) = 4 three-stars
        let star = CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(count_pattern(&star, Pattern::Star3), 4);
        assert_eq!(count_pattern(&star, Pattern::Path4), 0);

        // a triangle with one pendant
        let tt = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(count_pattern(&tt, Pattern::TailedTriangle), 1);
        assert_eq!(count_pattern(&tt, Pattern::Diamond), 0);
        // paths: 3-1-2-0? enumerate: the tailed triangle hosts 2 paths
        // of length 3 (3-2-0-1 and 3-2-1-0)
        assert_eq!(count_pattern(&tt, Pattern::Path4), 2);

        // diamond graph
        let dia = CsrGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_pattern(&dia, Pattern::Diamond), 1);
        assert_eq!(count_pattern(&dia, Pattern::Cycle4), 1);
        // each of the two triangles admits two external attachments
        assert_eq!(count_pattern(&dia, Pattern::TailedTriangle), 4);
    }

    #[test]
    fn clique_patterns_delegate_to_kclist() {
        let g = complete(6);
        assert_eq!(count_pattern(&g, Pattern::Edge), 15);
        assert_eq!(count_pattern(&g, Pattern::Triangle), 20);
        assert_eq!(count_pattern(&g, Pattern::Clique(5)), 6);
        assert_eq!(count_pattern(&g, Pattern::Clique4), 15);
    }

    /// Brute-force cross-check of every 4-vertex pattern on random
    /// graphs: enumerate all 4-subsets and count embeddings directly.
    #[test]
    fn matches_bruteforce_on_random_graphs() {
        let mut state = 0xDEADBEEFu64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 8;
            let mut b = GraphBuilder::new();
            b.ensure_vertex(n - 1);
            for u in 0..n {
                for v in u + 1..n {
                    if rng() % 2 == 0 {
                        b.add_edge(u, v);
                    }
                }
            }
            let g = b.build();
            for p in Pattern::all_four_vertex() {
                let brute = brute_count_4(&g, p);
                assert_eq!(
                    count_pattern(&g, p),
                    brute,
                    "{p} on {:?}",
                    g.edges().collect::<Vec<_>>()
                );
            }
        }
    }

    /// Counts embeddings of a 4-vertex pattern by checking all vertex
    /// 4-subsets against per-subset closed forms on the induced graph.
    fn brute_count_4(g: &CsrGraph, p: Pattern) -> u64 {
        let n = g.n() as u32;
        let mut total = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    for d in c + 1..n {
                        total += embeddings_in_subset(g, [a, b, c, d], p);
                    }
                }
            }
        }
        total
    }

    fn embeddings_in_subset(g: &CsrGraph, vs: [u32; 4], p: Pattern) -> u64 {
        // count embeddings with image exactly this vertex set via
        // permutations / automorphisms
        let perms = permutations(&vs);
        let edges: Vec<(usize, usize)> = match p {
            Pattern::Star3 => vec![(0, 1), (0, 2), (0, 3)],
            Pattern::Path4 => vec![(0, 1), (1, 2), (2, 3)],
            Pattern::TailedTriangle => vec![(0, 1), (1, 2), (2, 0), (2, 3)],
            Pattern::Cycle4 => vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            Pattern::Diamond => vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)],
            Pattern::Clique4 => vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
            _ => unreachable!(),
        };
        let aut: u64 = match p {
            Pattern::Star3 => 6,
            Pattern::Path4 => 2,
            Pattern::TailedTriangle => 2,
            Pattern::Cycle4 => 8,
            Pattern::Diamond => 4,
            Pattern::Clique4 => 24,
            _ => unreachable!(),
        };
        let mut hits = 0u64;
        for perm in &perms {
            if edges.iter().all(|&(i, j)| g.has_edge(perm[i], perm[j])) {
                hits += 1;
            }
        }
        hits / aut
    }

    fn permutations(vs: &[u32; 4]) -> Vec<[u32; 4]> {
        let mut out = Vec::with_capacity(24);
        let mut v = *vs;
        heap_permute(&mut v, 4, &mut out);
        out
    }

    fn heap_permute(v: &mut [u32; 4], k: usize, out: &mut Vec<[u32; 4]>) {
        if k == 1 {
            out.push(*v);
            return;
        }
        for i in 0..k {
            heap_permute(v, k - 1, out);
            if k.is_multiple_of(2) {
                v.swap(i, k - 1);
            } else {
                v.swap(0, k - 1);
            }
        }
    }
}
