//! Locally pattern-densest subgraph discovery (Algorithm 7, §5.2).
//!
//! An LhxPDS (Definition 7) is the pattern analog of an LhCDS: a
//! connected subgraph `G[S]` that is `hx`-pattern `ρ`-compact for
//! `ρ = d_ψhx(G[S])` and maximal with that property. The whole IPPV
//! machinery — bounds, SEQ-kClist++, decomposition, pruning, flow
//! verification — only consumes instance membership and incidence, so
//! it runs unchanged on pattern instance stores; this module just wires
//! enumeration and the pipeline together.

use crate::enumerate::enumerate_pattern_with;
use crate::pattern::Pattern;
use lhcds_core::index::{DecompositionIndex, IndexConfig};
use lhcds_core::pipeline::{top_k_with_instances, IppvConfig, IppvResult, Lhcds};
use lhcds_graph::CsrGraph;

/// Result of a top-k LhxPDS run.
#[derive(Debug, Clone)]
pub struct LhxpdsResult {
    /// The pattern that was mined.
    pub pattern: Pattern,
    /// The top-k locally pattern-densest subgraphs, density descending.
    pub subgraphs: Vec<Lhcds>,
    /// Pipeline statistics (pattern enumeration time under
    /// `clique_ms`).
    pub stats: lhcds_core::pipeline::IppvStats,
}

/// Discovers the top-k locally `pattern`-densest subgraphs of `g`.
pub fn top_k_lhxpds(g: &CsrGraph, pattern: Pattern, k: usize, cfg: &IppvConfig) -> LhxpdsResult {
    let sp = lhcds_obs::span("enumerate");
    let store = enumerate_pattern_with(g, pattern, &cfg.parallelism);
    let enum_ms = sp.elapsed_ms();
    sp.counter("instances", store.len() as u64);
    drop(sp);
    let IppvResult {
        subgraphs,
        mut stats,
    } = top_k_with_instances(g, &store, k, cfg);
    stats.clique_ms = enum_ms;
    LhxpdsResult {
        pattern,
        subgraphs,
        stats,
    }
}

/// Freezes the *complete* LhxPDS decomposition of `g` under `pattern`
/// into a servable [`DecompositionIndex`], keyed by the pattern's
/// stable [`Pattern::key`].
///
/// Clique-shaped patterns take the pinned h-clique construction path
/// ([`DecompositionIndex::build`]) — they share the `clique.h{h}` key,
/// so a `triangle` pattern index and an `--h 3` index are the same
/// artifact. Everything else freezes
/// `top_k_lhxpds(g, pattern, usize::MAX, ..)` with `h` = pattern arity,
/// so the index persists, staleness-guards, and serves exactly like the
/// h-clique one (zero flow work on the read path).
pub fn build_pattern_index(
    g: &CsrGraph,
    pattern: Pattern,
    cfg: &IndexConfig,
) -> DecompositionIndex {
    match pattern {
        Pattern::Edge | Pattern::Triangle | Pattern::Clique(_) | Pattern::Clique4 => {
            DecompositionIndex::build(g, pattern.arity(), cfg)
        }
        _ => {
            let res = top_k_lhxpds(g, pattern, usize::MAX, &cfg.ippv);
            DecompositionIndex::from_subgraphs(g.n(), pattern.arity(), cfg.k_max, &res.subgraphs)
                .with_pattern(pattern.key())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_core::Ratio;
    use lhcds_graph::GraphBuilder;

    fn complete_on(b: &mut GraphBuilder, vs: &[u32]) {
        for i in 0..vs.len() {
            for j in i + 1..vs.len() {
                b.add_edge(vs[i], vs[j]);
            }
        }
    }

    #[test]
    fn clique_pattern_matches_clique_pipeline() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7]);
        b.add_edge(4, 5);
        let g = b.build();
        let via_pattern = top_k_lhxpds(&g, Pattern::Triangle, 5, &IppvConfig::default());
        let via_clique = lhcds_core::pipeline::top_k_lhcds(&g, 3, 5, &IppvConfig::default());
        assert_eq!(via_pattern.subgraphs, via_clique.subgraphs);
    }

    #[test]
    fn cycle4_densest_region() {
        // K4 (hosts 3 cycles) + disjoint plain 4-cycle (hosts 1)
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3]);
        b.add_edge(4, 5)
            .add_edge(5, 6)
            .add_edge(6, 7)
            .add_edge(7, 4);
        let g = b.build();
        let res = top_k_lhxpds(&g, Pattern::Cycle4, 5, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3]);
        assert_eq!(res.subgraphs[0].density, Ratio::new(3, 4));
        assert_eq!(res.subgraphs[1].vertices, vec![4, 5, 6, 7]);
        assert_eq!(res.subgraphs[1].density, Ratio::new(1, 4));
    }

    #[test]
    fn star3_prefers_hubs() {
        // a 6-leaf star vs an isolated triangle: only the star region
        // holds 3-star instances
        let mut b = GraphBuilder::new();
        for leaf in 1..=6u32 {
            b.add_edge(0, leaf);
        }
        b.add_edge(7, 8).add_edge(8, 9).add_edge(9, 7);
        let g = b.build();
        let res = top_k_lhxpds(&g, Pattern::Star3, 3, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 1);
        assert!(res.subgraphs[0].vertices.contains(&0));
        assert!(res.subgraphs[0].density > Ratio::zero());
    }

    #[test]
    fn diamond_pipeline_on_overlapping_triangles() {
        // K4 minus an edge (one diamond) + K5 (lots of diamonds)
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1)
            .add_edge(0, 2)
            .add_edge(1, 2)
            .add_edge(1, 3)
            .add_edge(2, 3);
        complete_on(&mut b, &[4, 5, 6, 7, 8]);
        let g = b.build();
        let res = top_k_lhxpds(&g, Pattern::Diamond, 2, &IppvConfig::default());
        assert_eq!(res.subgraphs.len(), 2);
        // K5 hosts 6·C(5,4) = 30 diamonds over 5 vertices
        assert_eq!(res.subgraphs[0].vertices, vec![4, 5, 6, 7, 8]);
        assert_eq!(res.subgraphs[0].density, Ratio::new(30, 5));
        assert_eq!(res.subgraphs[1].vertices, vec![0, 1, 2, 3]);
        assert_eq!(res.subgraphs[1].density, Ratio::new(1, 4));
    }

    #[test]
    fn pattern_free_graph_yields_nothing() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let res = top_k_lhxpds(&g, Pattern::Clique4, 3, &IppvConfig::default());
        assert!(res.subgraphs.is_empty());
        let res = top_k_lhxpds(&g, Pattern::Cycle4, 3, &IppvConfig::default());
        assert!(res.subgraphs.is_empty());
    }

    #[test]
    fn pattern_index_matches_fresh_runs_and_keys_correctly() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        b.add_edge(4, 5);
        let g = b.build();
        let cfg = IndexConfig::default();
        for p in Pattern::all_builtin() {
            let idx = build_pattern_index(&g, p, &cfg);
            assert_eq!(idx.pattern(), p.key(), "{p}");
            assert_eq!(idx.h(), p.arity(), "{p}");
            let fresh = top_k_lhxpds(&g, p, 5, &IppvConfig::default());
            let served = idx.top_k(5).unwrap();
            assert_eq!(served.len(), fresh.subgraphs.len(), "{p}");
            for (a, b) in served.iter().zip(&fresh.subgraphs) {
                assert_eq!(a.vertices, &b.vertices[..], "{p}");
                assert_eq!(a.density, b.density, "{p}");
                assert_eq!(a.clique_count, b.clique_count, "{p}");
            }
        }
        // clique-shaped pattern == the h-clique construction, key and all
        let via_pattern = build_pattern_index(&g, Pattern::Triangle, &cfg);
        let via_clique = DecompositionIndex::build(&g, 3, &cfg);
        assert_eq!(via_pattern, via_clique);
        assert_eq!(via_pattern.pattern(), "clique.h3");
    }

    #[test]
    fn outputs_are_disjoint_and_ordered() {
        let mut b = GraphBuilder::new();
        complete_on(&mut b, &[0, 1, 2, 3, 4]);
        complete_on(&mut b, &[5, 6, 7, 8]);
        complete_on(&mut b, &[9, 10, 11, 12]);
        b.add_edge(4, 5).add_edge(8, 9);
        let g = b.build();
        for p in Pattern::all_four_vertex() {
            let res = top_k_lhxpds(&g, p, 10, &IppvConfig::default());
            let mut seen = vec![false; g.n()];
            for s in &res.subgraphs {
                for &v in &s.vertices {
                    assert!(!seen[v as usize], "{p}: overlap at {v}");
                    seen[v as usize] = true;
                }
            }
            for w in res.subgraphs.windows(2) {
                assert!(w[0].density >= w[1].density, "{p}: order violated");
            }
        }
    }
}
