//! # lhcds-patterns
//!
//! §5 of the LhCDS paper: locally **general-pattern** densest subgraph
//! discovery (LhxPDS). A pattern (motif) is a small connected graph; the
//! pattern density of `G[S]` is the number of pattern instances fully
//! inside `S` divided by `|S|`, and an LhxPDS is the pattern analog of
//! an LhCDS (Definition 7).
//!
//! The crate provides:
//!
//! * [`pattern::Pattern`] — the pattern vocabulary of the paper's
//!   Figure 8 (all connected 4-vertex patterns: 3-star, 4-path, tailed
//!   triangle, 4-cycle, diamond, 4-clique) plus edges, triangles, and
//!   h-cliques.
//! * [`enumerate`] — automorphism-aware instance enumeration: each
//!   instance (vertex set + role assignment collapsed by symmetry) is
//!   produced exactly once.
//! * [`custom`] — arbitrary user-defined patterns (`k ≤ 8` vertices)
//!   via ordered backtracking with automorphism-orbit deduplication —
//!   the "more general patterns" direction of §5 made concrete.
//! * [`lhxpds`] — Algorithm 7: the IPPV pipeline instantiated with a
//!   pattern instance store instead of a clique store. Because
//!   `lhcds-core` is parameterized by an instance enumerator, the whole
//!   propose–prune–verify machinery (bounds, CP iterations, flow
//!   verification) is reused unchanged.
//!
//! In the workspace DAG this crate sits above `lhcds-core` (as
//! `lhcds-baselines`' sibling) and is consumed by `lhcds-data`'s
//! dependents, the CLI (`--pattern`) and the bench harness (Figure 17).
//!
//! # Example
//!
//! ```
//! use lhcds_core::pipeline::IppvConfig;
//! use lhcds_graph::CsrGraph;
//! use lhcds_patterns::{top_k_lhxpds, Pattern};
//!
//! // A 4-cycle with a chord plus a pendant: the diamond {0,1,2,3} is
//! // the densest 2-triangle (diamond) region.
//! let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (2, 4)]);
//! let res = top_k_lhxpds(&g, Pattern::Diamond, 1, &IppvConfig::default());
//! assert_eq!(res.subgraphs[0].vertices, vec![0, 1, 2, 3]);
//! ```

#![warn(missing_docs)]

pub mod custom;
pub mod enumerate;
pub mod lhxpds;
pub mod pattern;

pub use custom::{top_k_custom, CustomPattern};
pub use enumerate::{count_pattern, enumerate_pattern, enumerate_pattern_with};
pub use lhxpds::{build_pattern_index, top_k_lhxpds, LhxpdsResult};
pub use pattern::Pattern;
