//! The pattern vocabulary (paper Figure 8 plus clique generalizations).

use std::fmt;

/// A small connected pattern (motif) whose instances drive LhxPDS
/// discovery. The six four-vertex patterns are exactly the paper's
/// Figure 8; `Edge`/`Triangle`/`Clique(h)` make the clique pipeline a
/// special case (an h-clique is the densest h-vertex pattern).
///
/// Instances are counted as *non-induced* subgraph embeddings modulo
/// automorphism — the standard motif-counting convention: each distinct
/// (vertex set, edge subset) isomorphic to the pattern counts once. A
/// K4 therefore hosts three 4-cycles and six diamonds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// A single edge (`ψ2`).
    Edge,
    /// A triangle (`ψ3`).
    Triangle,
    /// The h-clique (`ψh`).
    Clique(usize),
    /// 3-star: a center adjacent to three leaves (Figure 8a).
    Star3,
    /// Path on four vertices (Figure 8b).
    Path4,
    /// "c3-star": a triangle with a pendant vertex (Figure 8c).
    TailedTriangle,
    /// 4-loop: a cycle on four vertices (Figure 8d).
    Cycle4,
    /// "2-triangle": two triangles sharing an edge, K4 minus an edge
    /// (Figure 8e).
    Diamond,
    /// 4-clique (Figure 8f).
    Clique4,
}

impl Pattern {
    /// Number of vertices of the pattern (`h`).
    pub fn arity(&self) -> usize {
        match self {
            Pattern::Edge => 2,
            Pattern::Triangle => 3,
            Pattern::Clique(h) => *h,
            Pattern::Star3
            | Pattern::Path4
            | Pattern::TailedTriangle
            | Pattern::Cycle4
            | Pattern::Diamond
            | Pattern::Clique4 => 4,
        }
    }

    /// Number of edges of the pattern.
    pub fn edge_count(&self) -> usize {
        match self {
            Pattern::Edge => 1,
            Pattern::Triangle => 3,
            Pattern::Clique(h) => h * (h.saturating_sub(1)) / 2,
            Pattern::Star3 => 3,
            Pattern::Path4 => 3,
            Pattern::TailedTriangle => 4,
            Pattern::Cycle4 => 4,
            Pattern::Diamond => 5,
            Pattern::Clique4 => 6,
        }
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Edge => "edge",
            Pattern::Triangle => "triangle",
            Pattern::Clique(_) => "h-clique",
            Pattern::Star3 => "3-star",
            Pattern::Path4 => "4-path",
            Pattern::TailedTriangle => "c3-star",
            Pattern::Cycle4 => "4-loop",
            Pattern::Diamond => "2-triangle",
            Pattern::Clique4 => "4-clique",
        }
    }

    /// The six connected four-vertex patterns of Figure 8, paper order.
    pub fn all_four_vertex() -> [Pattern; 6] {
        [
            Pattern::Star3,
            Pattern::Path4,
            Pattern::TailedTriangle,
            Pattern::Cycle4,
            Pattern::Diamond,
            Pattern::Clique4,
        ]
    }

    /// Every built-in named pattern: `edge`, `triangle`, then Figure 8
    /// in paper order.
    pub fn all_builtin() -> [Pattern; 8] {
        [
            Pattern::Edge,
            Pattern::Triangle,
            Pattern::Star3,
            Pattern::Path4,
            Pattern::TailedTriangle,
            Pattern::Cycle4,
            Pattern::Diamond,
            Pattern::Clique4,
        ]
    }

    /// Stable persistence key (the *PatternKey*): the string that names
    /// this pattern's decomposition in `DecompositionIndex` metadata,
    /// `LHCDSIDX` snapshots (`FILE.<key>.lhcdsidx`), and the serve
    /// protocol.
    ///
    /// Clique-shaped patterns canonicalize to `clique.h{h}` — an edge,
    /// a triangle, or the Figure 8 `4-clique` yield the *same*
    /// decomposition as the h-clique pipeline at that arity, so they
    /// share one key (and hence one persisted index). Non-clique
    /// built-ins use their paper name (`3-star`, `4-loop`, …), which is
    /// filename-safe by construction.
    pub fn key(&self) -> String {
        match self {
            Pattern::Edge => "clique.h2".into(),
            Pattern::Triangle => "clique.h3".into(),
            Pattern::Clique4 => "clique.h4".into(),
            Pattern::Clique(h) => format!("clique.h{h}"),
            other => other.name().into(),
        }
    }

    /// Parses a CLI/protocol pattern name.
    ///
    /// Accepts the Figure 8 names (`3-star`, `4-path`, `c3-star`,
    /// `4-loop`, `2-triangle`, `4-clique`), `edge`, `triangle`, and the
    /// generic `{h}-clique` form (`h >= 2`). Returns `None` for
    /// anything else.
    pub fn parse(name: &str) -> Option<Pattern> {
        Some(match name {
            "edge" => Pattern::Edge,
            "triangle" => Pattern::Triangle,
            "3-star" => Pattern::Star3,
            "4-path" => Pattern::Path4,
            "c3-star" => Pattern::TailedTriangle,
            "4-loop" => Pattern::Cycle4,
            "2-triangle" => Pattern::Diamond,
            "4-clique" => Pattern::Clique4,
            other => {
                let h = other.strip_suffix("-clique")?.parse::<usize>().ok()?;
                if h < 2 {
                    return None;
                }
                Pattern::Clique(h)
            }
        })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Clique(h) => write!(f, "{h}-clique"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities_and_edges() {
        assert_eq!(Pattern::Edge.arity(), 2);
        assert_eq!(Pattern::Triangle.arity(), 3);
        assert_eq!(Pattern::Clique(5).arity(), 5);
        for p in Pattern::all_four_vertex() {
            assert_eq!(p.arity(), 4, "{p}");
        }
        assert_eq!(Pattern::Star3.edge_count(), 3);
        assert_eq!(Pattern::Diamond.edge_count(), 5);
        assert_eq!(Pattern::Clique4.edge_count(), 6);
        assert_eq!(Pattern::Clique(5).edge_count(), 10);
    }

    #[test]
    fn figure8_order_and_names() {
        let names: Vec<&str> = Pattern::all_four_vertex()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "3-star",
                "4-path",
                "c3-star",
                "4-loop",
                "2-triangle",
                "4-clique"
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Pattern::Clique(7).to_string(), "7-clique");
        assert_eq!(Pattern::Diamond.to_string(), "2-triangle");
    }

    #[test]
    fn keys_are_stable_and_clique_shaped_patterns_share_them() {
        assert_eq!(Pattern::Edge.key(), "clique.h2");
        assert_eq!(Pattern::Triangle.key(), "clique.h3");
        assert_eq!(Pattern::Clique4.key(), "clique.h4");
        assert_eq!(Pattern::Clique(4).key(), "clique.h4");
        assert_eq!(Pattern::Clique(7).key(), "clique.h7");
        assert_eq!(Pattern::Cycle4.key(), "4-loop");
        assert_eq!(Pattern::Star3.key(), "3-star");
        // keys are filename-safe: no separators or whitespace
        for p in Pattern::all_builtin() {
            let key = p.key();
            assert!(
                key.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-._".contains(c)),
                "{key}"
            );
        }
    }

    #[test]
    fn parse_round_trips_every_builtin_name() {
        for p in Pattern::all_builtin() {
            assert_eq!(Pattern::parse(p.name()), Some(p), "{p}");
        }
        assert_eq!(Pattern::parse("5-clique"), Some(Pattern::Clique(5)));
        assert_eq!(Pattern::parse("4-clique"), Some(Pattern::Clique4));
        assert_eq!(Pattern::parse("1-clique"), None);
        assert_eq!(Pattern::parse("banana"), None);
        assert_eq!(Pattern::parse(""), None);
    }
}
