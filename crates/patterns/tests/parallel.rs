//! Differential pattern-equivalence harness for the parallel LhxPDS
//! enumerators.
//!
//! The bespoke non-clique enumerators (3-star, 4-path, c3-star, 4-loop,
//! 2-triangle) and `CustomPattern::enumerate_with` shard their outer
//! loops through `par_collect_blocks`; clique-shaped patterns ride the
//! node-parallel kClist collect. Parallel enumeration is only safe to
//! ship if it is **byte-identical** to serial, so this suite pins, for
//! every built-in pattern at 1, 2, 4, and 8 threads:
//!
//! * the parallel `CliqueSet` store reproduces the serial store exactly
//!   — same flat member array, instance ids, and incidence index;
//! * the instance *set* matches a brute-force oracle: the same motif
//!   re-enumerated through the independent `CustomPattern` backtracking
//!   path (ordered search + automorphism-orbit dedup);
//! * a threaded request actually takes the threaded path
//!   (`parallel_collect_invocations` rises) while serial never does;
//! * `top_k_lhxpds` / `top_k_custom` answers are identical at every
//!   thread count.
//!
//! Graphs: the paper's Figure 2 worked example, complete graphs, sparse
//! degenerate shapes, and proptest-random graphs.

use lhcds_clique::{parallel_collect_invocations, CliqueSet, Parallelism};
use lhcds_core::pipeline::IppvConfig;
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use lhcds_patterns::{
    enumerate_pattern, enumerate_pattern_with, top_k_custom, top_k_lhxpds, CustomPattern, Pattern,
};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The brute-force oracle: the same motif as an explicit edge list on
/// `0..k`, enumerated through the independent `CustomPattern`
/// backtracking path rather than the bespoke per-pattern enumerator.
fn oracle_for(p: Pattern) -> CustomPattern {
    let (k, edges): (usize, &[(usize, usize)]) = match p {
        Pattern::Edge => (2, &[(0, 1)]),
        Pattern::Triangle => (3, &[(0, 1), (1, 2), (0, 2)]),
        Pattern::Star3 => (4, &[(0, 1), (0, 2), (0, 3)]),
        Pattern::Path4 => (4, &[(0, 1), (1, 2), (2, 3)]),
        Pattern::TailedTriangle => (4, &[(0, 1), (1, 2), (0, 2), (0, 3)]),
        Pattern::Cycle4 => (4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        Pattern::Diamond => (4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        Pattern::Clique4 => (4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
        Pattern::Clique(h) => {
            let mut es = Vec::new();
            for a in 0..h {
                for b in a + 1..h {
                    es.push((a, b));
                }
            }
            return CustomPattern::new("oracle", h, &es).expect("valid clique oracle");
        }
    };
    CustomPattern::new("oracle", k, edges).expect("valid oracle pattern")
}

/// Instances of a store as a sorted multiset of sorted vertex sets —
/// the representation-independent view both enumeration paths must
/// agree on. A *multiset*, not a set: distinct instances can share one
/// vertex set under different role assignments (a K4 hosts four 3-stars
/// on the same four vertices, one per center choice).
fn instance_multiset(store: &CliqueSet) -> Vec<Vec<VertexId>> {
    let mut all: Vec<Vec<VertexId>> = (0..store.len())
        .map(|i| {
            let mut m = store.members(i).to_vec();
            m.sort_unstable();
            m
        })
        .collect();
    all.sort();
    all
}

/// Byte-identity of two stores: flat members in the same order and the
/// same incidence index.
fn assert_stores_identical(a: &CliqueSet, b: &CliqueSet, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: store length");
    for i in 0..a.len() {
        assert_eq!(a.members(i), b.members(i), "{ctx}: instance {i}");
    }
    assert_eq!(a.n(), b.n(), "{ctx}: vertex count");
    for v in 0..a.n() as VertexId {
        assert_eq!(a.cliques_of(v), b.cliques_of(v), "{ctx}: incidence of {v}");
    }
}

/// The full differential contract for one pattern on one graph.
fn assert_pattern_equivalent(g: &CsrGraph, p: Pattern) {
    let serial = enumerate_pattern(g, p);
    // independent oracle: same motif, different algorithm
    let oracle = instance_multiset(&oracle_for(p).enumerate(g));
    assert_eq!(
        instance_multiset(&serial),
        oracle,
        "{}: serial disagrees with the CustomPattern oracle",
        p.key()
    );
    for t in THREAD_COUNTS {
        let par = Parallelism::threads(t);
        let threaded = enumerate_pattern_with(g, p, &par);
        assert_stores_identical(&serial, &threaded, &format!("{} threads={t}", p.key()));
    }
}

fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.ensure_vertex((n - 1) as VertexId);
    b.build()
}

#[test]
fn figure2_graph_all_builtin_patterns() {
    let g = lhcds_data::figure2_graph();
    for p in Pattern::all_builtin() {
        assert_pattern_equivalent(&g, p);
    }
    // plus the clique-shaped generic spelling at a few arities
    for h in [2usize, 3, 5] {
        assert_pattern_equivalent(&g, Pattern::Clique(h));
    }
}

#[test]
fn complete_graphs_all_builtin_patterns() {
    for n in [4usize, 6, 8] {
        let g = complete(n);
        for p in Pattern::all_builtin() {
            assert_pattern_equivalent(&g, p);
        }
    }
}

#[test]
fn sparse_and_degenerate_graphs() {
    let graphs = [
        // triangle-free cycle: only paths/stars/loops survive
        CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
        // star: 3-stars but no 4-vertex cycles or triangles
        CsrGraph::from_edges(6, [(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]),
        // edgeless and empty graphs
        CsrGraph::from_edges(4, []),
        CsrGraph::from_edges(0, []),
    ];
    for g in &graphs {
        for p in Pattern::all_builtin() {
            assert_pattern_equivalent(g, p);
        }
    }
}

/// A custom motif outside the built-in vocabulary (the 5-cycle) runs
/// the same sharded collect: parallel enumeration must reproduce the
/// serial store bit-for-bit.
#[test]
fn custom_pattern_parallel_matches_serial() {
    let c5 = CustomPattern::new("c5", 5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let g = lhcds_data::figure2_graph();
    let serial = c5.enumerate(&g);
    assert!(!serial.is_empty(), "fixture should contain 5-cycles");
    for t in THREAD_COUNTS {
        let par = Parallelism::threads(t);
        let threaded = c5.enumerate_with(&g, &par);
        assert_stores_identical(&serial, &threaded, &format!("c5 threads={t}"));
    }
}

/// Pins that a requested thread policy is *honored*, not silently
/// dropped to serial: a threads(4) enumeration must take the threaded
/// block-collect path (the process-wide counter rises), while serial
/// enumeration never touches it.
#[test]
fn parallelism_is_honored_not_dropped() {
    let g = lhcds_data::figure2_graph();
    let patterns = [
        Pattern::Triangle, // kClist collect path
        Pattern::Star3,
        Pattern::Path4,
        Pattern::TailedTriangle,
        Pattern::Cycle4,
        Pattern::Diamond, // bespoke par_collect_blocks paths
    ];
    for p in patterns {
        let before = parallel_collect_invocations();
        enumerate_pattern_with(&g, p, &Parallelism::serial());
        assert_eq!(
            parallel_collect_invocations(),
            before,
            "{}: serial enumeration took the threaded path",
            p.key()
        );
        enumerate_pattern_with(&g, p, &Parallelism::threads(4));
        assert!(
            parallel_collect_invocations() > before,
            "{}: threads(4) was silently dropped to serial",
            p.key()
        );
    }
    // the custom backtracker shards through the same collect
    let c5 = CustomPattern::new("c5", 5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let before = parallel_collect_invocations();
    c5.enumerate(&g);
    assert_eq!(parallel_collect_invocations(), before);
    c5.enumerate_with(&g, &Parallelism::threads(4));
    assert!(parallel_collect_invocations() > before);
}

/// End-to-end: the full LhxPDS pipeline gives identical answers at
/// every thread count, for built-in and custom patterns alike.
#[test]
fn pipeline_answers_are_thread_count_invariant() {
    let g = lhcds_data::figure2_graph();
    for p in [Pattern::Cycle4, Pattern::Diamond, Pattern::Star3] {
        let serial = top_k_lhxpds(&g, p, 3, &IppvConfig::default());
        for t in THREAD_COUNTS {
            let cfg = IppvConfig {
                parallelism: Parallelism::threads(t),
                ..IppvConfig::default()
            };
            let threaded = top_k_lhxpds(&g, p, 3, &cfg);
            assert_eq!(
                serial.subgraphs.len(),
                threaded.subgraphs.len(),
                "{} threads={t}",
                p.key()
            );
            for (a, b) in serial.subgraphs.iter().zip(&threaded.subgraphs) {
                assert_eq!(a.vertices, b.vertices, "{} threads={t}", p.key());
                assert_eq!(a.density, b.density, "{} threads={t}", p.key());
                assert_eq!(a.clique_count, b.clique_count, "{} threads={t}", p.key());
            }
        }
    }
    let c5 = CustomPattern::new("c5", 5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let serial = top_k_custom(&g, &c5, 2, &IppvConfig::default());
    for t in THREAD_COUNTS {
        let cfg = IppvConfig {
            parallelism: Parallelism::threads(t),
            ..IppvConfig::default()
        };
        let threaded = top_k_custom(&g, &c5, 2, &cfg);
        assert_eq!(serial.subgraphs.len(), threaded.subgraphs.len());
        for (a, b) in serial.subgraphs.iter().zip(&threaded.subgraphs) {
            assert_eq!(a.vertices, b.vertices, "c5 threads={t}");
            assert_eq!(a.density, b.density, "c5 threads={t}");
        }
    }
}

fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (4..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        prop::collection::vec(prop::bool::weighted(0.5), pairs).prop_map(move |bits| {
            let mut b = GraphBuilder::new();
            b.ensure_vertex((n - 1) as VertexId);
            let mut idx = 0;
            for u in 0..n as VertexId {
                for v in u + 1..n as VertexId {
                    if bits[idx] {
                        b.add_edge(u, v);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random graphs: every built-in pattern, full differential
    /// contract (serial == oracle, parallel == serial) at every thread
    /// count.
    #[test]
    fn random_graphs_are_pattern_equivalent(g in arb_graph(12)) {
        for p in Pattern::all_builtin() {
            assert_pattern_equivalent(&g, p);
        }
    }

    /// Parallel pattern runs are reproducible run-to-run.
    #[test]
    fn parallel_pattern_runs_are_reproducible(g in arb_graph(11)) {
        let par = Parallelism::threads(4);
        for p in [Pattern::Star3, Pattern::Cycle4, Pattern::Diamond] {
            let a = enumerate_pattern_with(&g, p, &par);
            let b = enumerate_pattern_with(&g, p, &par);
            assert_stores_identical(&a, &b, p.name());
        }
    }
}
