//! Protocol client: one-shot request/response round trips for the
//! `lhcds query` subcommand, scripts, and tests, plus a retry layer
//! with capped exponential backoff and deterministic jitter.
//!
//! Retries are deliberately narrow: only idempotent read ops (anything
//! but `shutdown`), and only on failures where the server provably did
//! not — or explicitly declined to — process the request: connect and
//! timeout errors, early connection closes, and the typed `overloaded`
//! shed response. A typed semantic error (`bad_k`, `internal`, …) is
//! an answer, not a transport fault, and is returned as-is.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{parse_request, request_json, Request};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect, send, or receive.
    Io(std::io::Error),
    /// The server closed the connection without responding.
    NoResponse,
    /// The response line was not valid protocol JSON.
    BadResponse(String),
    /// The server answered with `ok:false`; code and message attached.
    Server {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::NoResponse => write!(f, "server closed the connection early"),
            ClientError::BadResponse(line) => write!(f, "unparseable response: {line}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// Whether retrying (an idempotent request) can help: the failure
    /// is transport-level — connect/timeout/early close — or the typed
    /// `overloaded` shed, which the server sends precisely so clients
    /// back off and try again. Torn-but-parseable garbage
    /// ([`ClientError::BadResponse`]) is *not* retried: it may signal
    /// protocol skew, which retrying would only hammer.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::NoResponse => true,
            ClientError::Server { code, .. } => code == "overloaded",
            ClientError::BadResponse(_) => false,
        }
    }
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `i` (0-based) sleeps `base_delay * 2^i`, capped at
/// `max_delay`, then scaled by a jitter factor in `[0.5, 1.0)` derived
/// from `(seed, i)` — a pure function, so a rerun with the same seed
/// waits the same schedule (the chaos suite depends on that).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` means no retries.
    pub max_attempts: u32,
    /// Backoff base: the delay before the first retry (pre-jitter).
    pub base_delay: Duration,
    /// Upper bound on any single delay (pre-jitter).
    pub max_delay: Duration,
    /// Jitter seed; same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no retries — the pre-retry behavior of
    /// [`round_trip`]/[`query`].
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// `attempts` total tries with the default backoff and seed.
    pub fn attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// The delay before retry number `attempt` (0-based: the sleep
    /// after the first failure is `delay(0)`). Deterministic.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt.min(16)))
            .min(self.max_delay);
        // jitter factor in [0.5, 1.0): half the window is always kept,
        // so backoff stays monotone-ish while retries desynchronize
        let j = splitmix64(self.seed ^ u64::from(attempt));
        let frac = 0.5 + (j >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 0.5;
        exp.mul_f64(frac)
    }
}

/// SplitMix64: one strong 64-bit mix, enough for jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a request is safe to send twice. Every read op is; only
/// `shutdown` mutates daemon state.
pub fn is_idempotent(req: &Request) -> bool {
    !matches!(req, Request::Shutdown)
}

fn round_trip_once(addr: &str, line: &str, timeout: Duration) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true).ok();
    stream.write_all(line.as_bytes())?;
    if !line.ends_with('\n') {
        stream.write_all(b"\n")?;
    }
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(ClientError::NoResponse);
    }
    Ok(response.trim_end().to_string())
}

/// Sends one raw request line to `addr` and returns the raw response
/// line (without the trailing newline). One attempt, no retries.
pub fn round_trip(addr: &str, line: &str, timeout: Duration) -> Result<String, ClientError> {
    round_trip_with_retry(addr, line, timeout, &RetryPolicy::none())
}

/// [`round_trip`] under a [`RetryPolicy`]: retryable failures
/// (connect/timeout/early close, and a parseable `overloaded`
/// response) are retried with backoff — but only when the line parses
/// to an idempotent request. Anything the policy or idempotency rule
/// excludes fails on the first error, exactly like [`round_trip`].
pub fn round_trip_with_retry(
    addr: &str,
    line: &str,
    timeout: Duration,
    policy: &RetryPolicy,
) -> Result<String, ClientError> {
    let retryable_line = parse_request(line.trim_end())
        .map(|req| is_idempotent(&req))
        .unwrap_or(false);
    let mut attempt = 0u32;
    loop {
        let outcome = round_trip_once(addr, line, timeout).and_then(|response| {
            // an overloaded shed is a retry signal, not an answer
            if retryable_line && response.starts_with("{\"ok\":false") {
                if let Ok(v) = Json::parse(&response) {
                    let code = v
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str);
                    if code == Some("overloaded") {
                        return Err(server_error(&v, response.clone()));
                    }
                }
            }
            Ok(response)
        });
        match outcome {
            Ok(response) => return Ok(response),
            Err(e) => {
                attempt += 1;
                if !retryable_line || !e.is_retryable() || attempt >= policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.delay(attempt - 1));
            }
        }
    }
}

fn server_error(envelope: &Json, raw: String) -> ClientError {
    match envelope.get("error") {
        Some(err) => {
            let part = |name: &str| {
                err.get(name)
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string()
            };
            ClientError::Server {
                code: part("code"),
                message: part("message"),
            }
        }
        None => ClientError::BadResponse(raw),
    }
}

/// Sends a typed request and unwraps the success envelope: returns the
/// `result` value, or [`ClientError::Server`] for `ok:false`. One
/// attempt, no retries.
pub fn query(addr: &str, req: &Request, timeout: Duration) -> Result<Json, ClientError> {
    query_with_retry(addr, req, timeout, &RetryPolicy::none())
}

/// [`query`] under a [`RetryPolicy`]: transport failures and the typed
/// `overloaded` shed are retried with capped, jittered backoff — but
/// only for idempotent requests ([`is_idempotent`]); a `shutdown` is
/// never sent twice.
pub fn query_with_retry(
    addr: &str,
    req: &Request,
    timeout: Duration,
    policy: &RetryPolicy,
) -> Result<Json, ClientError> {
    let line = request_json(req).render();
    let retryable_req = is_idempotent(req);
    let mut attempt = 0u32;
    loop {
        match query_once(addr, &line, timeout) {
            Ok(result) => return Ok(result),
            Err(e) => {
                attempt += 1;
                if !retryable_req || !e.is_retryable() || attempt >= policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.delay(attempt - 1));
            }
        }
    }
}

fn query_once(addr: &str, line: &str, timeout: Duration) -> Result<Json, ClientError> {
    let response = round_trip_once(addr, line, timeout)?;
    let v = Json::parse(&response).map_err(|_| ClientError::BadResponse(response.clone()))?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => v
            .get("result")
            .cloned()
            .ok_or(ClientError::BadResponse(response)),
        Some(false) => Err(server_error(&v, response)),
        None => Err(ClientError::BadResponse(response)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::IndexRef;

    #[test]
    fn delays_are_deterministic_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            seed: 42,
        };
        let a: Vec<Duration> = (0..8).map(|i| p.delay(i)).collect();
        let b: Vec<Duration> = (0..8).map(|i| p.delay(i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(2u32.pow(i as u32))
                .min(Duration::from_millis(200));
            assert!(
                *d >= exp.mul_f64(0.5),
                "attempt {i}: {d:?} < half of {exp:?}"
            );
            assert!(
                *d < exp,
                "attempt {i}: {d:?} not under the pre-jitter {exp:?}"
            );
        }
        let other = RetryPolicy { seed: 43, ..p };
        let c: Vec<Duration> = (0..8).map(|i| other.delay(i)).collect();
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn only_shutdown_is_non_idempotent() {
        assert!(is_idempotent(&Request::Ping));
        assert!(is_idempotent(&Request::Stats));
        assert!(is_idempotent(&Request::Metrics));
        assert!(is_idempotent(&Request::Health));
        assert!(is_idempotent(&Request::TopK {
            index: IndexRef::clique(3),
            k: 1
        }));
        assert!(!is_idempotent(&Request::Shutdown));
    }

    #[test]
    fn retryability_is_narrow() {
        assert!(ClientError::Io(std::io::Error::other("boom")).is_retryable());
        assert!(ClientError::NoResponse.is_retryable());
        assert!(ClientError::Server {
            code: "overloaded".into(),
            message: String::new()
        }
        .is_retryable());
        for code in ["bad_k", "internal", "too_large", "deadline_exceeded"] {
            assert!(
                !ClientError::Server {
                    code: code.into(),
                    message: String::new()
                }
                .is_retryable(),
                "{code} must not be retried"
            );
        }
        assert!(!ClientError::BadResponse("garbage".into()).is_retryable());
    }

    #[test]
    fn connect_failures_are_retried_then_surface() {
        // a port from the ephemeral range with (almost surely) no
        // listener: every attempt fails fast with ConnectionRefused
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            seed: 1,
        };
        let err = query_with_retry(
            "127.0.0.1:9",
            &Request::Ping,
            Duration::from_millis(200),
            &p,
        )
        .unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
    }
}
