//! Protocol client: one-shot request/response round trips for the
//! `lhcds query` subcommand, scripts, and tests.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::json::Json;
use crate::protocol::{request_json, Request};

/// Client-side failure modes.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect, send, or receive.
    Io(std::io::Error),
    /// The server closed the connection without responding.
    NoResponse,
    /// The response line was not valid protocol JSON.
    BadResponse(String),
    /// The server answered with `ok:false`; code and message attached.
    Server {
        /// Machine-readable error code.
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::NoResponse => write!(f, "server closed the connection early"),
            ClientError::BadResponse(line) => write!(f, "unparseable response: {line}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Sends one raw request line to `addr` and returns the raw response
/// line (without the trailing newline).
pub fn round_trip(addr: &str, line: &str, timeout: Duration) -> Result<String, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true).ok();
    stream.write_all(line.as_bytes())?;
    if !line.ends_with('\n') {
        stream.write_all(b"\n")?;
    }
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(ClientError::NoResponse);
    }
    Ok(response.trim_end().to_string())
}

/// Sends a typed request and unwraps the success envelope: returns the
/// `result` value, or [`ClientError::Server`] for `ok:false`.
pub fn query(addr: &str, req: &Request, timeout: Duration) -> Result<Json, ClientError> {
    let line = request_json(req).render();
    let response = round_trip(addr, &line, timeout)?;
    let v = Json::parse(&response).map_err(|_| ClientError::BadResponse(response.clone()))?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => v
            .get("result")
            .cloned()
            .ok_or(ClientError::BadResponse(response)),
        Some(false) => {
            let err = v.get("error");
            let part = |name: &str| {
                err.and_then(|e| e.get(name))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string()
            };
            Err(ClientError::Server {
                code: part("code"),
                message: part("message"),
            })
        }
        None => Err(ClientError::BadResponse(response)),
    }
}
