//! Minimal JSON value type, serializer, and parser.
//!
//! The serve protocol is newline-delimited JSON, and this build
//! environment is offline — no `serde`. This module implements exactly
//! what the protocol needs and nothing more:
//!
//! * [`Json`] — a value tree whose objects preserve insertion order
//!   (a `Vec` of pairs), so serialization is deterministic: the CLI's
//!   `--json` output and the daemon's responses are *string*-identical
//!   when they carry the same answer, which CI exploits with a plain
//!   `diff`.
//! * [`Json::render`] — compact one-line serialization (no spaces, no
//!   trailing newline), safe to frame with `\n`.
//! * [`Json::parse`] — a strict recursive-descent parser with a depth
//!   limit (malformed or hostile input must produce an error, never a
//!   panic or a stack overflow — the daemon feeds it raw socket bytes).
//!
//! Numbers are `i128`: every quantity the protocol carries (vertex ids,
//! counts, exact density numerators/denominators) is an integer.
//! Floats are deliberately unsupported — exactness is the whole point
//! of this repository.

use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol never uses fractions or exponents).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs in insertion order, keys unique.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer fitting `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|x| u64::try_from(x).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact one-line serialization.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; the whole input must be consumed (modulo
    /// surrounding whitespace).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, at: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.at != bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.at,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractions and exponents are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("digits are ascii");
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|_| self.err("invalid integer"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.at + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired — the protocol
                            // never emits them; reject rather than
                            // mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.at += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // copy one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_compact_and_ordered() {
        let v = Json::object([
            ("ok", Json::Bool(true)),
            ("k", Json::Int(5)),
            ("name", Json::Str("a\"b\\c\n".into())),
            ("items", Json::Array(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"ok":true,"k":5,"name":"a\"b\\c\n","items":[1,null]}"#
        );
    }

    #[test]
    fn parse_round_trips_render() {
        let cases = [
            "null",
            "true",
            "-12",
            r#""he\"llo\u00e9""#,
            "[1,2,[3,{}]]",
            r#"{"a":1,"b":[true,null],"c":{"d":"e"}}"#,
        ];
        for c in cases {
            let v = Json::parse(c).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{c}");
        }
    }

    #[test]
    fn parse_accepts_whitespace_everywhere() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("b").unwrap().is_null());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "1.5",
            "1e9",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\uZZZZ\"",
            "\"\\ud800\"",
            "[1] trailing",
            "nullnull",
            "{\"a\":1}{",
            "\u{7}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_without_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(
            Json::parse(&i128::MAX.to_string()).unwrap().as_int(),
            Some(i128::MAX)
        );
        assert!(Json::parse("170141183460469231731687303715884105728").is_err()); // i128::MAX + 1
        assert_eq!(Json::parse("-7").unwrap().as_int(), Some(-7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","n":3,"b":false,"arr":[],"nul":null}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("arr").unwrap().as_array().unwrap().is_empty());
        assert!(v.get("nul").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
