//! # lhcds-service
//!
//! The query-serving subsystem: turns a one-shot LhCDS decomposition
//! into a servable, persistent artifact. This is the first production
//! layer of the ROADMAP's north star — the expensive IPPV pipeline runs
//! once (construction), and every query after that is an `O(answer)`
//! array read:
//!
//! * [`protocol`] — the newline-delimited JSON request/response
//!   protocol (`top_k`, `density_of`, `membership`, `stats`, `metrics`,
//!   `health`, `ping`, `shutdown`), plus the answer serializers shared
//!   with the CLI's `--json` mode so batch and served answers are
//!   string-identical. Query ops name the served index by clique size
//!   (`h`) or pattern name (`pattern`) — see [`protocol::IndexRef`].
//! * [`server`] — the daemon: `std::net::TcpListener`, a fixed worker
//!   thread pool, an LRU of hot `(pattern, k)` answers, and graceful
//!   shutdown that drains in-flight requests. One daemon can host the
//!   same graph under several patterns concurrently. Failure is typed,
//!   never wrong: oversized lines get `too_large`, late answers
//!   `deadline_exceeded`, shed connections `overloaded`, and caught
//!   request panics `internal` — the daemon survives them all (see the
//!   [`server`] docs for the full failure model).
//! * [`client`] — one-shot round trips for `lhcds query`, scripts, and
//!   tests, plus a [`client::RetryPolicy`] with capped exponential
//!   backoff and deterministic jitter for idempotent read ops.
//! * [`json`] — the minimal JSON tree/parser/serializer everything
//!   above speaks (hand-rolled; the build is offline, so no `serde`).
//! * [`lru`], [`signals`] — supporting pieces: the hot-answer cache
//!   and the SIGINT/SIGTERM bridge.
//!
//! The indexes themselves come from below: `lhcds-core`'s
//! `DecompositionIndex` (construction + queries), persisted through
//! `lhcds-data`'s `LHCDSIDX` cache format. In the workspace DAG this
//! crate depends only on `lhcds-graph` + `lhcds-core` and sits beside
//! the data layer; the CLI wires `lhcds-data`'s persistence to this
//! crate's server, and both reach consumers through `lhcds::service`.
//!
//! # Example
//!
//! ```
//! use std::collections::BTreeMap;
//! use std::time::Duration;
//! use lhcds_core::index::{DecompositionIndex, IndexConfig};
//! use lhcds_graph::CsrGraph;
//! use lhcds_service::client;
//! use lhcds_service::protocol::{IndexRef, Request};
//! use lhcds_service::server::{ServedIndexes, Server, ServeOptions};
//!
//! let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
//! let mut served = ServedIndexes {
//!     name: "triangle".into(),
//!     n: g.n(),
//!     m: g.m(),
//!     original_ids: None,
//!     indexes: BTreeMap::new(),
//!     failed: BTreeMap::new(),
//! };
//! served.insert(DecompositionIndex::build(&g, 3, &IndexConfig::default()));
//! let server = Server::bind("127.0.0.1:0", served, &ServeOptions::default()).unwrap();
//! let addr = server.local_addr().to_string();
//!
//! let result = client::query(
//!     &addr,
//!     &Request::TopK { index: IndexRef::clique(3), k: 1 },
//!     Duration::from_secs(5),
//! )
//! .unwrap();
//! assert_eq!(result.get("found").unwrap().as_u64(), Some(1));
//!
//! server.shutdown_handle().shutdown();
//! server.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod lru;
pub mod protocol;
pub mod server;
pub mod signals;

pub use client::RetryPolicy;
pub use json::Json;
pub use protocol::{AnswerRow, IndexRef, ProtocolError, Request};
pub use server::{ServeOptions, ServedIndexes, Server, ShutdownHandle};
