//! A small least-recently-used cache.
//!
//! Hand-rolled because the build is offline; sized for the daemon's
//! hot-answer cache (tens of entries), so the O(capacity) eviction
//! scan is cheaper than maintaining an intrusive list would be. Access
//! order is tracked with a monotonic tick per entry; eviction removes
//! the minimum tick.

use std::collections::HashMap;
use std::hash::Hash;

/// A fixed-capacity LRU map.
#[derive(Debug)]
pub struct Lru<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    /// Creates a cache holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Lru<K, V> {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        Lru {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity),
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry when full.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // refresh 1 → 2 is oldest
        lru.insert(3, 30);
        assert_eq!(lru.get(&2), None, "2 was evicted");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // same key: no eviction
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn capacity_one_works() {
        let mut lru: Lru<&str, u8> = Lru::new(1);
        assert!(lru.is_empty());
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), None);
        assert_eq!(lru.get(&"b"), Some(2));
        assert_eq!(lru.capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = Lru::<u8, u8>::new(0);
    }
}
