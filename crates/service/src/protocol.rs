//! The serve protocol: newline-delimited JSON requests and responses.
//!
//! One request per line, one response per line, over any byte stream
//! (the daemon speaks it over TCP; tests speak it over in-memory
//! buffers). Requests are objects with an `"op"` discriminator:
//!
//! ```text
//! {"op":"top_k","h":3,"k":5}
//! {"op":"top_k","pattern":"4-loop","k":5}
//! {"op":"density_of","h":3,"vertex":11}
//! {"op":"membership","pattern":"diamond","vertex":11}
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"health"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Query ops name the served index either by clique size (`"h"`) or by
//! pattern name (`"pattern"`, see [`IndexRef`]); a daemon can host the
//! same graph under several patterns concurrently. Naming an unserved
//! or unknown pattern is the typed error `bad_pattern`. When both
//! fields are present they must agree (`h` = pattern arity).
//!
//! Responses are `{"ok":true,"result":…}` or
//! `{"ok":false,"error":{"code":…,"message":…}}`. Every malformed
//! request maps to an error *response* — a protocol error must never
//! tear down the connection, let alone the daemon.
//!
//! Vertex ids on the wire are always **original file ids** (the u64 ids
//! of the ingested edge list); the daemon translates to and from
//! compact ranks internally. Densities travel as the exact string
//! (`"13/6"`) plus integer numerator/denominator — never a float.
//!
//! The answer serializers here ([`topk_result`], [`subgraph_json`]) are
//! shared with the CLI's `--json` mode, so a batch `lhcds topk --json`
//! and a served `top_k` query produce *string-identical* result
//! objects; CI diffs the two.

use crate::json::Json;
use lhcds_core::index::{QueryError, SubgraphView};
use lhcds_core::{FlowStats, Ratio};
use lhcds_graph::VertexId;

/// How a query op names the served index: by clique size (`h`), by
/// pattern name (`pattern` — a built-in name like `4-loop` or a raw
/// served key like `custom.1a2b…`), or both, which must then agree.
/// A bare `h` is the pre-pattern wire form and means the h-clique
/// index, so old clients keep working unchanged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexRef {
    /// Clique size / pattern arity, if given.
    pub h: Option<usize>,
    /// Pattern name, if given.
    pub pattern: Option<String>,
}

impl IndexRef {
    /// Refers to the h-clique index (the pre-pattern wire form).
    pub fn clique(h: usize) -> IndexRef {
        IndexRef {
            h: Some(h),
            pattern: None,
        }
    }

    /// Refers to a served pattern by name.
    pub fn pattern(name: impl Into<String>) -> IndexRef {
        IndexRef {
            h: None,
            pattern: Some(name.into()),
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The k densest LhCDSes/LhxPDSes of a served index.
    TopK {
        /// Which served index.
        index: IndexRef,
        /// How many subgraphs.
        k: usize,
    },
    /// Exact density of the LhCDS/LhxPDS containing a vertex.
    DensityOf {
        /// Which served index.
        index: IndexRef,
        /// Vertex, in original file ids.
        vertex: u64,
    },
    /// The LhCDS/LhxPDS containing a vertex (rank + members).
    Membership {
        /// Which served index.
        index: IndexRef,
        /// Vertex, in original file ids.
        vertex: u64,
    },
    /// Server and index statistics.
    Stats,
    /// Prometheus-style text exposition of the server's counters and
    /// latency histograms (the exposition travels as a JSON string
    /// field; the protocol stays one JSON line per response).
    Metrics,
    /// Liveness and readiness: overall `ok`/`degraded` status plus a
    /// per-index readiness row (an index that failed to load at startup
    /// is reported, not hidden — the daemon serves what it has).
    Health,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to stop accepting and drain in-flight work.
    Shutdown,
}

/// A protocol-level failure, rendered as an `ok:false` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code. Request-shape errors:
    /// `bad_request`, `unknown_op`, `bad_h`, `bad_pattern`, `bad_k`,
    /// `bad_vertex`, `shutting_down`. Robustness errors: `too_large`
    /// (request line over the byte limit), `deadline_exceeded` (answer
    /// missed the per-request deadline), `overloaded` (admission shed —
    /// safe to retry), `internal` (request execution panicked; the
    /// worker survived).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error with the given code and message.
    pub fn new(code: &'static str, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

impl From<QueryError> for ProtocolError {
    fn from(e: QueryError) -> Self {
        let code = match e {
            QueryError::KOutOfRange { .. } | QueryError::KZero => "bad_k",
            QueryError::VertexOutOfRange { .. } => "bad_vertex",
        };
        ProtocolError::new(code, e.to_string())
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = Json::parse(line).map_err(|e| ProtocolError::new("bad_request", e.to_string()))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new("bad_request", "missing string field 'op'"))?;
    let field = |name: &str| -> Result<u64, ProtocolError> {
        v.get(name).and_then(Json::as_u64).ok_or_else(|| {
            ProtocolError::new(
                "bad_request",
                format!("op '{op}' needs a non-negative integer field '{name}'"),
            )
        })
    };
    // `h` and `pattern` are each optional, but at least one must name
    // the index — and a present field must still have the right type.
    let index = || -> Result<IndexRef, ProtocolError> {
        let h = match v.get("h") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or_else(|| {
                ProtocolError::new(
                    "bad_request",
                    format!("op '{op}': field 'h' must be a non-negative integer"),
                )
            })? as usize),
        };
        let pattern = match v.get("pattern") {
            None => None,
            Some(j) => Some(
                j.as_str()
                    .ok_or_else(|| {
                        ProtocolError::new(
                            "bad_request",
                            format!("op '{op}': field 'pattern' must be a string"),
                        )
                    })?
                    .to_string(),
            ),
        };
        if h.is_none() && pattern.is_none() {
            return Err(ProtocolError::new(
                "bad_request",
                format!("op '{op}' needs an integer field 'h' or a string field 'pattern'"),
            ));
        }
        Ok(IndexRef { h, pattern })
    };
    match op {
        "top_k" => Ok(Request::TopK {
            index: index()?,
            k: field("k")? as usize,
        }),
        "density_of" => Ok(Request::DensityOf {
            index: index()?,
            vertex: field("vertex")?,
        }),
        "membership" => Ok(Request::Membership {
            index: index()?,
            vertex: field("vertex")?,
        }),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtocolError::new(
            "unknown_op",
            format!("unknown op '{other}' (try top_k | density_of | membership | stats | metrics | health | ping | shutdown)"),
        )),
    }
}

/// Serializes a request (the client side of [`parse_request`]).
pub fn request_json(req: &Request) -> Json {
    // `op`, then the index fields that are present, then the op's own
    // operands — a pattern-free request renders exactly as before the
    // pattern field existed.
    fn with_index(op: &'static str, index: &IndexRef, rest: (&'static str, Json)) -> Json {
        let mut fields = vec![("op", Json::Str(op.into()))];
        if let Some(h) = index.h {
            fields.push(("h", Json::Int(h as i128)));
        }
        if let Some(p) = &index.pattern {
            fields.push(("pattern", Json::Str(p.clone())));
        }
        fields.push(rest);
        Json::object(fields)
    }
    match req {
        Request::TopK { index, k } => with_index("top_k", index, ("k", Json::Int(*k as i128))),
        Request::DensityOf { index, vertex } => {
            with_index("density_of", index, ("vertex", Json::Int(*vertex as i128)))
        }
        Request::Membership { index, vertex } => {
            with_index("membership", index, ("vertex", Json::Int(*vertex as i128)))
        }
        Request::Stats => Json::object([("op", Json::Str("stats".into()))]),
        Request::Metrics => Json::object([("op", Json::Str("metrics".into()))]),
        Request::Health => Json::object([("op", Json::Str("health".into()))]),
        Request::Ping => Json::object([("op", Json::Str("ping".into()))]),
        Request::Shutdown => Json::object([("op", Json::Str("shutdown".into()))]),
    }
}

/// Wraps a result in the success envelope, newline-framed.
pub fn ok_response(result: Json) -> String {
    let mut line = Json::object([("ok", Json::Bool(true)), ("result", result)]).render();
    line.push('\n');
    line
}

/// Wraps an error in the failure envelope, newline-framed.
pub fn err_response(e: &ProtocolError) -> String {
    let mut line = Json::object([
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::object([
                ("code", Json::Str(e.code.into())),
                ("message", Json::Str(e.message.clone())),
            ]),
        ),
    ])
    .render();
    line.push('\n');
    line
}

/// One answer row: an LhCDS as the serializers see it. Both the batch
/// CLI (`Lhcds` values) and the index-backed server ([`SubgraphView`])
/// convert into this.
#[derive(Debug, Clone)]
pub struct AnswerRow<'a> {
    /// Member vertices, compact ranks, ascending.
    pub vertices: &'a [VertexId],
    /// Exact h-clique density.
    pub density: Ratio,
    /// Number of h-cliques inside.
    pub clique_count: u64,
}

impl<'a> From<SubgraphView<'a>> for AnswerRow<'a> {
    fn from(v: SubgraphView<'a>) -> Self {
        AnswerRow {
            vertices: v.vertices,
            density: v.density,
            clique_count: v.clique_count,
        }
    }
}

/// Serializes one subgraph. `rank` is 1-based; `ids` maps compact ranks
/// to original file ids (identity for already-compact inputs).
pub fn subgraph_json(rank: usize, row: &AnswerRow<'_>, ids: &dyn Fn(VertexId) -> u64) -> Json {
    Json::object([
        ("rank", Json::Int(rank as i128)),
        ("density", Json::Str(row.density.to_string())),
        ("density_num", Json::Int(row.density.num())),
        ("density_den", Json::Int(row.density.den())),
        ("size", Json::Int(row.vertices.len() as i128)),
        ("instances", Json::Int(row.clique_count as i128)),
        (
            "vertices",
            Json::Array(
                row.vertices
                    .iter()
                    .map(|&v| Json::Int(ids(v) as i128))
                    .collect(),
            ),
        ),
    ])
}

/// Serializes a full top-k answer — **the** shared shape between
/// `lhcds topk --json`, `lhcds query top-k`, and the daemon.
pub fn topk_result<'a>(
    h: usize,
    k: usize,
    rows: impl IntoIterator<Item = AnswerRow<'a>>,
    ids: &dyn Fn(VertexId) -> u64,
) -> Json {
    let subgraphs: Vec<Json> = rows
        .into_iter()
        .enumerate()
        .map(|(i, row)| subgraph_json(i + 1, &row, ids))
        .collect();
    Json::object([
        ("h", Json::Int(h as i128)),
        ("k", Json::Int(k as i128)),
        ("found", Json::Int(subgraphs.len() as i128)),
        ("subgraphs", Json::Array(subgraphs)),
    ])
}

/// Serializes the flow-layer work counters — **the** shared shape
/// between `lhcds stats --json` and the daemon's `stats` op, so batch
/// and served telemetry stay string-identical. Counts only; the
/// warm-start hit rate is derived by consumers (this protocol carries
/// no floats). `cold_solves` is carried explicitly (the sum of
/// `first_build` and `infeasible_reset`) so pre-split consumers keep
/// working.
///
/// On the serving read path these are the process totals since start:
/// a healthy daemon shows `max_flow_invocations` frozen at its
/// index-build value — queries run zero flow.
pub fn flow_stats_json(stats: &FlowStats) -> Json {
    Json::object([
        ("networks_built", Json::Int(stats.networks_built as i128)),
        ("arcs_built", Json::Int(stats.arcs_built as i128)),
        (
            "max_flow_invocations",
            Json::Int(stats.max_flow_invocations as i128),
        ),
        ("warm_solves", Json::Int(stats.warm_solves as i128)),
        ("retract_solves", Json::Int(stats.retract_solves as i128)),
        ("cold_solves", Json::Int(stats.cold_solves() as i128)),
        ("first_build", Json::Int(stats.first_build as i128)),
        (
            "infeasible_reset",
            Json::Int(stats.infeasible_reset as i128),
        ),
        ("scale_fallbacks", Json::Int(stats.scale_fallbacks as i128)),
        ("ggt_recursions", Json::Int(stats.ggt_recursions as i128)),
        ("ggt_max_depth", Json::Int(stats.ggt_max_depth as i128)),
        (
            "ggt_contracted_nodes",
            Json::Int(stats.ggt_contracted_nodes as i128),
        ),
        ("ggt_arcs_saved", Json::Int(stats.ggt_arcs_saved as i128)),
    ])
}

/// Serializes a latency histogram summary — **the** shared shape
/// between the daemon's `stats` op and `lhcds stats --json`. All
/// figures are integer microseconds (this protocol carries no floats);
/// percentiles are log-bucket upper bounds clamped to the observed
/// maximum, so they are exact to within the histogram's ~6% bucket
/// width.
pub fn latency_summary_json(h: &lhcds_obs::Histogram) -> Json {
    Json::object([
        ("count", Json::Int(h.count() as i128)),
        ("sum_us", Json::Int(h.sum() as i128)),
        ("min_us", Json::Int(h.min() as i128)),
        ("max_us", Json::Int(h.max() as i128)),
        ("p50_us", Json::Int(h.p50() as i128)),
        ("p99_us", Json::Int(h.p99() as i128)),
        ("p999_us", Json::Int(h.p999() as i128)),
    ])
}

/// Serializes a `density_of` answer (`null` density: vertex in no
/// LhCDS).
pub fn density_result(h: usize, vertex: u64, density: Option<Ratio>) -> Json {
    let (d, num, den) = match density {
        Some(r) => (
            Json::Str(r.to_string()),
            Json::Int(r.num()),
            Json::Int(r.den()),
        ),
        None => (Json::Null, Json::Null, Json::Null),
    };
    Json::object([
        ("h", Json::Int(h as i128)),
        ("vertex", Json::Int(vertex as i128)),
        ("density", d),
        ("density_num", num),
        ("density_den", den),
    ])
}

/// Serializes a `membership` answer (`null` subgraph: vertex in no
/// LhCDS).
pub fn membership_result(
    h: usize,
    vertex: u64,
    member_of: Option<(usize, AnswerRow<'_>)>,
    ids: &dyn Fn(VertexId) -> u64,
) -> Json {
    let subgraph = match member_of {
        Some((rank, row)) => subgraph_json(rank, &row, ids),
        None => Json::Null,
    };
    Json::object([
        ("h", Json::Int(h as i128)),
        ("vertex", Json::Int(vertex as i128)),
        ("subgraph", subgraph),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::TopK {
                index: IndexRef::clique(3),
                k: 5,
            },
            Request::TopK {
                index: IndexRef::pattern("4-loop"),
                k: 5,
            },
            Request::TopK {
                index: IndexRef {
                    h: Some(4),
                    pattern: Some("diamond".into()),
                },
                k: 1,
            },
            Request::DensityOf {
                index: IndexRef::clique(4),
                vertex: 7,
            },
            Request::Membership {
                index: IndexRef::pattern("3-star"),
                vertex: 0,
            },
            Request::Stats,
            Request::Health,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            let line = request_json(&r).render();
            assert_eq!(parse_request(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn pattern_free_requests_render_the_pre_pattern_wire_form() {
        // old clients and old traffic captures must stay valid byte for
        // byte
        let line = request_json(&Request::TopK {
            index: IndexRef::clique(3),
            k: 5,
        })
        .render();
        assert_eq!(line, r#"{"op":"top_k","h":3,"k":5}"#);
        let line = request_json(&Request::TopK {
            index: IndexRef::pattern("4-loop"),
            k: 5,
        })
        .render();
        assert_eq!(line, r#"{"op":"top_k","pattern":"4-loop","k":5}"#);
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for (line, code) in [
            ("", "bad_request"),
            ("not json", "bad_request"),
            ("{}", "bad_request"),
            (r#"{"op":42}"#, "bad_request"),
            (r#"{"op":"frobnicate"}"#, "unknown_op"),
            (r#"{"op":"top_k"}"#, "bad_request"),
            (r#"{"op":"top_k","h":3}"#, "bad_request"),
            (r#"{"op":"top_k","h":3,"k":-1}"#, "bad_request"),
            (r#"{"op":"top_k","h":"three","k":1}"#, "bad_request"),
            (r#"{"op":"top_k","pattern":42,"k":1}"#, "bad_request"),
            (r#"{"op":"top_k","k":1}"#, "bad_request"),
            (r#"{"op":"density_of","h":3}"#, "bad_request"),
            (r#"{"op":"membership","pattern":"4-loop"}"#, "bad_request"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, code, "{line}");
        }
    }

    #[test]
    fn envelopes_are_parseable_one_liners() {
        let ok = ok_response(Json::Int(1));
        assert!(ok.ends_with('\n') && !ok.trim_end().contains('\n'));
        let v = Json::parse(ok.trim_end()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));

        let err = err_response(&ProtocolError::new("bad_k", "k too big"));
        let v = Json::parse(err.trim_end()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad_k")
        );
    }

    #[test]
    fn topk_result_shape() {
        let vertices: Vec<u32> = vec![0, 1, 2];
        let rows = vec![AnswerRow {
            vertices: &vertices,
            density: Ratio::new(13, 6),
            clique_count: 13,
        }];
        let ids = |v: u32| u64::from(v) + 100; // a non-identity remap
        let out = topk_result(3, 2, rows, &ids).render();
        assert_eq!(
            out,
            r#"{"h":3,"k":2,"found":1,"subgraphs":[{"rank":1,"density":"13/6","density_num":13,"density_den":6,"size":3,"instances":13,"vertices":[100,101,102]}]}"#
        );
    }

    #[test]
    fn density_and_membership_nulls() {
        let out = density_result(3, 9, None).render();
        assert!(out.contains(r#""density":null"#), "{out}");
        let out = membership_result(3, 9, None, &|v| u64::from(v)).render();
        assert!(out.contains(r#""subgraph":null"#), "{out}");
        let out = density_result(3, 9, Some(Ratio::new(1, 3))).render();
        assert!(out.contains(r#""density":"1/3""#), "{out}");
    }

    #[test]
    fn flow_stats_json_shape_is_stable() {
        let stats = FlowStats {
            networks_built: 3,
            arcs_built: 120,
            max_flow_invocations: 9,
            warm_solves: 4,
            retract_solves: 2,
            first_build: 3,
            infeasible_reset: 2,
            scale_fallbacks: 0,
            ggt_recursions: 6,
            ggt_max_depth: 2,
            ggt_contracted_nodes: 17,
            ggt_arcs_saved: 240,
        };
        assert_eq!(
            flow_stats_json(&stats).render(),
            concat!(
                r#"{"networks_built":3,"arcs_built":120,"max_flow_invocations":9,"#,
                r#""warm_solves":4,"retract_solves":2,"cold_solves":5,"#,
                r#""first_build":3,"infeasible_reset":2,"scale_fallbacks":0,"#,
                r#""ggt_recursions":6,"ggt_max_depth":2,"ggt_contracted_nodes":17,"#,
                r#""ggt_arcs_saved":240}"#
            )
        );
    }

    #[test]
    fn query_errors_map_to_stable_codes() {
        let e: ProtocolError = QueryError::KZero.into();
        assert_eq!(e.code, "bad_k");
        let e: ProtocolError = QueryError::VertexOutOfRange { vertex: 9, n: 3 }.into();
        assert_eq!(e.code, "bad_vertex");
    }
}
