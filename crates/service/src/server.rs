//! The `lhcds` query daemon: a fixed worker-thread pool serving the
//! NDJSON protocol over `std::net::TcpListener`.
//!
//! Design constraints, in order:
//!
//! 1. **Queries are flow-free.** The daemon owns finished
//!    [`DecompositionIndex`]es; every request is answered from their
//!    arrays (plus an LRU of hot serialized `top_k` answers). The IPPV
//!    pipeline and the flow network are construction-time machinery
//!    that never runs here.
//! 2. **A client can never take the daemon down.** Malformed lines,
//!    unknown ops, out-of-range parameters, over-long lines, and
//!    disconnects map to protocol error responses or dropped
//!    connections. A request that somehow panics is caught per request
//!    (`catch_unwind`) and answered as the typed `internal` error; a
//!    panic that escapes a connection is caught per worker, counted,
//!    and the worker serves on — the pool never shrinks.
//! 3. **Failure is typed, never wrong.** Oversized request lines get
//!    `too_large` (the excess is discarded, bounded memory, connection
//!    survives), answers that miss the per-request deadline get
//!    `deadline_exceeded`, and connections above the admission bound
//!    are shed fast with `overloaded` instead of queueing forever. The
//!    `health` op reports liveness plus per-index readiness
//!    (`degraded` when an index failed to load). Every failure path
//!    has a deterministic fault-injection point
//!    ([`lhcds_obs::fault`]), so the chaos suite can drive each one
//!    and assert responses are byte-identical to batch output or typed
//!    errors.
//! 4. **Shutdown is graceful.** [`ShutdownHandle::shutdown`] (also
//!    triggered by the protocol `shutdown` op and, in the CLI, by
//!    SIGTERM/ctrl-c) stops the accept loop; workers finish every
//!    request whose bytes have already arrived, flush the response, and
//!    only then close. [`Server::join`] returns once all threads are
//!    parked.
//!
//! Everything is `std`: no async runtime, no network crates — the
//! build is offline by constraint, and a thread-per-connection-slot
//! model is plenty for a read-only in-memory index (see
//! `BENCH_serve.json`).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::lru::Lru;
use crate::protocol::{
    density_result, err_response, flow_stats_json, latency_summary_json, membership_result,
    ok_response, parse_request, topk_result, AnswerRow, IndexRef, ProtocolError, Request,
};
use lhcds_core::index::{default_pattern_key, DecompositionIndex};
use lhcds_graph::VertexId;
use lhcds_obs::fault::{self, FaultPoint};
use lhcds_obs::{Histogram, Ring};
use lhcds_patterns::Pattern;

/// How often blocked loops re-check the stop flag.
const POLL: Duration = Duration::from_millis(20);
/// Read timeout on client sockets (bounds shutdown latency, not
/// clients: a slow client just spans several timeouts).
const READ_POLL: Duration = Duration::from_millis(100);
/// Write timeout on client sockets. A client that stops *reading*
/// eventually fills its TCP receive window; without this bound a
/// worker would block in `write_all` forever, never observe the stop
/// flag, and wedge `Server::join`. On timeout the connection is
/// dropped (the response would be torn anyway).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);
/// How long an injected `slow_read` fault stalls a request line.
const SLOW_READ_STALL: Duration = Duration::from_millis(30);

/// How many over-threshold requests the slow-query ring retains.
const SLOW_RING_CAP: usize = 64;
/// Longest request-line snippet kept in a slow-query ring entry.
const SLOW_QUERY_SNIPPET: usize = 256;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fixed worker-thread count (= concurrently served connections).
    pub workers: usize,
    /// Capacity of the hot `(pattern key, k)` answer cache.
    pub lru_capacity: usize,
    /// Requests at or above this wall time (milliseconds) are retained
    /// in the slow-query ring (`0` retains everything).
    pub slow_query_ms: u64,
    /// Longest accepted request line, in bytes. Oversized lines are
    /// answered with the typed `too_large` error (the excess is
    /// discarded without buffering, so memory stays bounded and the
    /// connection survives).
    pub max_request_bytes: usize,
    /// Per-request deadline, milliseconds, measured from the first byte
    /// of the request line; an answer that misses it is replaced by the
    /// typed `deadline_exceeded` error. `0` disables the deadline.
    pub request_deadline_ms: u64,
    /// Admission bound: connections accepted while this many are
    /// already queued for a worker are shed fast with a typed
    /// `overloaded` error instead of queueing forever.
    pub max_pending: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            lru_capacity: 64,
            slow_query_ms: 100,
            max_request_bytes: 64 * 1024,
            request_deadline_ms: 10_000,
            max_pending: 1024,
        }
    }
}

/// The immutable data a server answers from: one graph, one finished
/// index per served pattern key, and the rank ↔ original-id
/// translation. The same graph can be hosted under several patterns
/// (say `clique.h3`, `4-loop`, and `2-triangle`) concurrently.
#[derive(Debug, Clone)]
pub struct ServedIndexes {
    /// Display name of the graph (source path or "builtin").
    pub name: String,
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// rank → original file id; `None` = identity (already compact).
    pub original_ids: Option<Vec<u64>>,
    /// One finished index per served pattern key (h-clique indexes
    /// under `clique.h{h}`, see `lhcds_core::index::default_pattern_key`).
    pub indexes: BTreeMap<String, DecompositionIndex>,
    /// Pattern keys that failed to load at startup, with the load
    /// error. A daemon with entries here serves what it has and
    /// reports `degraded` from the `health` op instead of refusing to
    /// start.
    pub failed: BTreeMap<String, String>,
}

impl ServedIndexes {
    /// Inserts `idx` under its own pattern key.
    pub fn insert(&mut self, idx: DecompositionIndex) {
        self.indexes.insert(idx.pattern().to_string(), idx);
    }

    fn display_id(&self, v: VertexId) -> u64 {
        match &self.original_ids {
            Some(ids) => ids[v as usize],
            None => u64::from(v),
        }
    }

    /// Compact rank of an original file id, if it names a vertex.
    fn rank_of(&self, original: u64) -> Option<VertexId> {
        match &self.original_ids {
            Some(ids) => ids.binary_search(&original).ok().map(|r| r as VertexId),
            None => (original < self.n as u64).then_some(original as VertexId),
        }
    }

    fn served_keys(&self) -> Vec<&str> {
        self.indexes.keys().map(String::as_str).collect()
    }

    /// Resolves a request's index reference to a served index and its
    /// canonical pattern key (the LRU key). A bare `h` means the
    /// h-clique index (`bad_h` when unserved, the pre-pattern error
    /// contract); a pattern name resolves through [`Pattern::parse`]
    /// with raw served keys (e.g. `custom.…`) as fallback, and any
    /// unknown/unserved/contradictory pattern is `bad_pattern`.
    fn index_for(&self, r: &IndexRef) -> Result<(String, &DecompositionIndex), ProtocolError> {
        let (key, named) = match (&r.pattern, r.h) {
            (None, None) => {
                // unreachable through parse_request, which demands one
                return Err(ProtocolError::new(
                    "bad_request",
                    "request names neither 'h' nor 'pattern'",
                ));
            }
            (None, Some(h)) => (default_pattern_key(h), None),
            (Some(name), _) => match Pattern::parse(name) {
                Some(p) => (p.key(), Some(name.as_str())),
                None if self.indexes.contains_key(name.as_str()) => {
                    (name.clone(), Some(name.as_str()))
                }
                None => {
                    return Err(ProtocolError::new(
                        "bad_pattern",
                        format!(
                            "unknown pattern '{name}' (this daemon serves {:?})",
                            self.served_keys()
                        ),
                    ));
                }
            },
        };
        let idx = self.indexes.get(&key).ok_or_else(|| match named {
            Some(name) => ProtocolError::new(
                "bad_pattern",
                format!(
                    "pattern '{name}' (key '{key}') is not served (this daemon serves {:?})",
                    self.served_keys()
                ),
            ),
            None => ProtocolError::new(
                "bad_h",
                format!(
                    "h = {} is not served (this daemon serves {:?})",
                    r.h.unwrap_or(0),
                    self.served_keys()
                ),
            ),
        })?;
        if let (Some(name), Some(h)) = (&r.pattern, r.h) {
            if idx.h() != h {
                return Err(ProtocolError::new(
                    "bad_pattern",
                    format!(
                        "pattern '{name}' has arity {}, but the request says h = {h}",
                        idx.h()
                    ),
                ));
            }
        }
        Ok((key, idx))
    }
}

/// Request classification for the per-op counters and latency
/// histograms. One variant per protocol op, plus [`OpKind::Invalid`]
/// for lines that never parsed to an op (malformed JSON, unknown op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `top_k`.
    TopK,
    /// `density_of`.
    DensityOf,
    /// `membership`.
    Membership,
    /// `stats`.
    Stats,
    /// `metrics`.
    Metrics,
    /// `health`.
    Health,
    /// `ping`.
    Ping,
    /// `shutdown`.
    Shutdown,
    /// Unparseable request line.
    Invalid,
}

impl OpKind {
    /// Every kind, in the fixed order `stats`/`metrics` report them.
    pub const ALL: [OpKind; 9] = [
        OpKind::TopK,
        OpKind::DensityOf,
        OpKind::Membership,
        OpKind::Stats,
        OpKind::Metrics,
        OpKind::Health,
        OpKind::Ping,
        OpKind::Shutdown,
        OpKind::Invalid,
    ];

    /// Stable telemetry name (the protocol's `op` spelling).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::TopK => "top_k",
            OpKind::DensityOf => "density_of",
            OpKind::Membership => "membership",
            OpKind::Stats => "stats",
            OpKind::Metrics => "metrics",
            OpKind::Health => "health",
            OpKind::Ping => "ping",
            OpKind::Shutdown => "shutdown",
            OpKind::Invalid => "invalid",
        }
    }

    fn of(req: &Request) -> OpKind {
        match req {
            Request::TopK { .. } => OpKind::TopK,
            Request::DensityOf { .. } => OpKind::DensityOf,
            Request::Membership { .. } => OpKind::Membership,
            Request::Stats => OpKind::Stats,
            Request::Metrics => OpKind::Metrics,
            Request::Health => OpKind::Health,
            Request::Ping => OpKind::Ping,
            Request::Shutdown => OpKind::Shutdown,
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One over-threshold request, as retained by the slow-query ring.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Telemetry name of the op ([`OpKind::name`]).
    pub op: &'static str,
    /// Wall time spent answering, microseconds.
    pub duration_us: u64,
    /// The request line (truncated to a snippet).
    pub request: String,
}

/// Live counters, exposed by the `stats` and `metrics` ops and by
/// tests. Recording is lock-free (relaxed atomics and
/// [`Histogram::record`]); everything here is always on — these are
/// product metrics, independent of the `lhcds_obs` tracing flag.
#[derive(Debug)]
pub struct ServerStats {
    /// Requests answered (ok or error), across all connections.
    pub requests: AtomicU64,
    /// Responses answered from the hot-answer LRU.
    pub lru_hits: AtomicU64,
    /// `top_k` responses that had to be serialized fresh.
    pub lru_misses: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Request executions that panicked — each one was caught and
    /// answered as the typed `internal` error; the worker survived.
    pub panics: AtomicU64,
    /// Connections shed at admission with the typed `overloaded` error.
    pub sheds: AtomicU64,
    /// Worker threads revived after a panic escaped a whole connection
    /// (the per-request guard makes this a should-never counter).
    pub worker_respawns: AtomicU64,
    /// Per-op request counts, indexed in [`OpKind::ALL`] order.
    pub op_requests: [AtomicU64; OpKind::ALL.len()],
    /// Per-op error-response counts, same order.
    pub op_errors: [AtomicU64; OpKind::ALL.len()],
    /// Per-op request latency histograms (microseconds), same order.
    pub op_latency: [Histogram; OpKind::ALL.len()],
    /// Overall request latency histogram (microseconds).
    pub latency: Histogram,
    /// When this stats block was created (= server start).
    started: Instant,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats::new()
    }
}

impl ServerStats {
    /// Fresh zeroed counters with the uptime clock starting now.
    pub fn new() -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            lru_hits: AtomicU64::new(0),
            lru_misses: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            op_requests: std::array::from_fn(|_| AtomicU64::new(0)),
            op_errors: std::array::from_fn(|_| AtomicU64::new(0)),
            op_latency: std::array::from_fn(|_| Histogram::new()),
            latency: Histogram::new(),
            started: Instant::now(),
        }
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis().min(u64::MAX as u128) as u64
    }

    fn record(&self, op: OpKind, us: u64, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.op_requests[op.index()].fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.op_errors[op.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.op_latency[op.index()].record(us);
        self.latency.record(us);
    }
}

struct Shared {
    served: ServedIndexes,
    stats: ServerStats,
    lru: Mutex<Lru<(String, usize), Arc<String>>>,
    stop: AtomicBool,
    /// Slow-query threshold, milliseconds ([`ServeOptions::slow_query_ms`]).
    slow_query_ms: u64,
    /// The most recent over-threshold requests, oldest evicted first.
    slow: Ring<SlowQuery>,
    /// Request-line byte limit ([`ServeOptions::max_request_bytes`]).
    max_request_bytes: usize,
    /// Per-request deadline, if enabled ([`ServeOptions::request_deadline_ms`]).
    deadline: Option<Duration>,
    /// Admission bound ([`ServeOptions::max_pending`]).
    max_pending: usize,
    /// Connections handed to the worker queue but not yet picked up.
    pending: AtomicU64,
}

impl Shared {
    /// Answers one already-framed request line. Infallible by design:
    /// every failure becomes an error response. Every answer — ok or
    /// error, including unparseable lines — is timed into the per-op
    /// and overall latency histograms, and over-threshold requests land
    /// in the slow-query ring. (Production traffic flows through
    /// [`Shared::respond_received`] so the deadline clock starts at the
    /// request's first byte; this wrapper is the unit-test entry.)
    #[cfg(test)]
    fn respond(&self, line: &str) -> (Arc<String>, bool) {
        self.respond_received(line, Instant::now())
    }

    /// Like [`Shared::respond`], with `received` = when the request's
    /// first byte arrived, so the per-request deadline covers a slowly
    /// trickling request line as well as execution time.
    fn respond_received(&self, line: &str, received: Instant) -> (Arc<String>, bool) {
        let start = Instant::now();
        let (op, mut response, is_shutdown) = self.dispatch(line);
        if let Some(deadline) = self.deadline {
            // Replace only ok answers: a typed error is already the
            // more specific signal, and it is never "a wrong answer
            // delivered late".
            if received.elapsed() > deadline && !response.starts_with("{\"ok\":false") {
                response = Arc::new(err_response(&ProtocolError::new(
                    "deadline_exceeded",
                    format!("request missed the {} ms deadline", deadline.as_millis()),
                )));
            }
        }
        let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        // own serializer: an error envelope always renders with this
        // exact prefix, so no response re-parse is needed on the hot path
        let is_error = response.starts_with("{\"ok\":false");
        self.stats.record(op, us, is_error);
        if us >= self.slow_query_ms.saturating_mul(1_000) {
            self.slow.push(SlowQuery {
                op: op.name(),
                duration_us: us,
                request: line.chars().take(SLOW_QUERY_SNIPPET).collect(),
            });
        }
        (response, is_shutdown)
    }

    /// The typed answer to a request line over the byte limit. The line
    /// never parsed, so it classifies as [`OpKind::Invalid`]; it is
    /// still a fully counted request.
    fn oversized_response(&self) -> String {
        let start = Instant::now();
        let response = err_response(&ProtocolError::new(
            "too_large",
            format!(
                "request line exceeds the {}-byte limit (excess discarded)",
                self.max_request_bytes
            ),
        ));
        let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.stats.record(OpKind::Invalid, us, true);
        response
    }

    fn dispatch(&self, line: &str) -> (OpKind, Arc<String>, bool) {
        let req = match parse_request(line) {
            Err(e) => return (OpKind::Invalid, Arc::new(err_response(&e)), false),
            Ok(req) => req,
        };
        let op = OpKind::of(&req);
        // Per-request panic boundary: a panicking execution (a bug, or
        // the injected `worker_panic` fault) is counted and answered as
        // the typed `internal` error on the same connection — the
        // worker thread never unwinds, so the pool keeps its size.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(req))) {
            Ok((response, is_shutdown)) => (op, response, is_shutdown),
            Err(_) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                let e = ProtocolError::new(
                    "internal",
                    format!(
                        "request execution panicked (op '{}'); the worker survived",
                        op.name()
                    ),
                );
                (op, Arc::new(err_response(&e)), false)
            }
        }
    }

    fn execute(&self, req: Request) -> (Arc<String>, bool) {
        if fault::should_fire(FaultPoint::WorkerPanic) {
            panic!("injected worker panic");
        }
        match req {
            Request::Ping => (Arc::new(ok_response(Json::Str("pong".into()))), false),
            Request::Shutdown => (Arc::new(ok_response(Json::Str("stopping".into()))), true),
            Request::Stats => (Arc::new(ok_response(self.stats_json())), false),
            Request::Metrics => (Arc::new(ok_response(self.metrics_json())), false),
            Request::Health => (Arc::new(ok_response(self.health_json())), false),
            Request::TopK { index, k } => (self.top_k(&index, k), false),
            Request::DensityOf { index, vertex } => {
                (Arc::new(self.vertex_query(&index, vertex, false)), false)
            }
            Request::Membership { index, vertex } => {
                (Arc::new(self.vertex_query(&index, vertex, true)), false)
            }
        }
    }

    /// The `health` op: overall liveness plus per-index readiness. A
    /// daemon that lost an index at startup keeps serving the rest and
    /// says so here (`status: "degraded"`), instead of hiding it or
    /// refusing to start.
    fn health_json(&self) -> Json {
        let mut rows: Vec<Json> = self
            .served
            .indexes
            .keys()
            .map(|key| {
                Json::object([
                    ("pattern", Json::Str(key.clone())),
                    ("ready", Json::Bool(true)),
                ])
            })
            .collect();
        rows.extend(self.served.failed.iter().map(|(key, err)| {
            Json::object([
                ("pattern", Json::Str(key.clone())),
                ("ready", Json::Bool(false)),
                ("error", Json::Str(err.clone())),
            ])
        }));
        let status = if self.served.failed.is_empty() {
            "ok"
        } else {
            "degraded"
        };
        Json::object([
            ("status", Json::Str(status.into())),
            ("uptime_ms", Json::Int(self.stats.uptime_ms() as i128)),
            (
                "indexes_ready",
                Json::Int(self.served.indexes.len() as i128),
            ),
            (
                "indexes_failed",
                Json::Int(self.served.failed.len() as i128),
            ),
            ("indexes", Json::Array(rows)),
        ])
    }

    fn top_k(&self, r: &IndexRef, k: usize) -> Arc<String> {
        // Resolve before the LRU probe: `{"h":3}` and
        // `{"pattern":"triangle"}` canonicalize to the same key and
        // must share one cache entry.
        let (key, idx) = match self.served.index_for(r) {
            Ok(resolved) => resolved,
            Err(e) => return Arc::new(err_response(&e)),
        };
        if let Some(hit) = self
            .lru
            .lock()
            .expect("lru poisoned")
            .get(&(key.clone(), k))
        {
            self.stats.lru_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let line = match self.top_k_fresh(idx, k) {
            Ok(result) => ok_response(result),
            Err(e) => return Arc::new(err_response(&e)),
        };
        self.stats.lru_misses.fetch_add(1, Ordering::Relaxed);
        let line = Arc::new(line);
        self.lru
            .lock()
            .expect("lru poisoned")
            .insert((key, k), Arc::clone(&line));
        line
    }

    fn top_k_fresh(&self, idx: &DecompositionIndex, k: usize) -> Result<Json, ProtocolError> {
        let views = idx.top_k(k)?;
        let ids = |v: VertexId| self.served.display_id(v);
        Ok(topk_result(
            idx.h(),
            k,
            views.into_iter().map(AnswerRow::from),
            &ids,
        ))
    }

    fn vertex_query(&self, r: &IndexRef, vertex: u64, membership: bool) -> String {
        let (_, idx) = match self.served.index_for(r) {
            Ok(resolved) => resolved,
            Err(e) => return err_response(&e),
        };
        let Some(rank) = self.served.rank_of(vertex) else {
            return err_response(&ProtocolError::new(
                "bad_vertex",
                format!("vertex {vertex} is not a vertex of the served graph"),
            ));
        };
        let ids = |v: VertexId| self.served.display_id(v);
        let h = idx.h();
        if membership {
            let found = idx
                .membership(rank)
                .map(|view| (view.rank, AnswerRow::from(view)));
            ok_response(membership_result(h, vertex, found, &ids))
        } else {
            ok_response(density_result(h, vertex, idx.density_of(rank)))
        }
    }

    fn stats_json(&self) -> Json {
        // h_values lists only true h-clique indexes (the pre-pattern
        // field contract); patterns lists every served key.
        let hs: Vec<Json> = self
            .served
            .indexes
            .iter()
            .filter(|(key, idx)| **key == default_pattern_key(idx.h()))
            .map(|(_, idx)| Json::Int(idx.h() as i128))
            .collect();
        let patterns: Vec<Json> = self
            .served
            .indexes
            .keys()
            .map(|key| Json::Str(key.clone()))
            .collect();
        let decompositions: Vec<Json> = self
            .served
            .indexes
            .iter()
            .map(|(key, idx)| {
                Json::object([
                    ("pattern", Json::Str(key.clone())),
                    ("h", Json::Int(idx.h() as i128)),
                    ("k_max", Json::Int(idx.k_max() as i128)),
                    ("subgraphs", Json::Int(idx.len() as i128)),
                ])
            })
            .collect();
        // Per-op telemetry rows, in the fixed OpKind::ALL order; the
        // latency sub-objects render through the shared serializer
        // (`latency_summary_json`), like `flow` below.
        let ops: Vec<Json> = OpKind::ALL
            .iter()
            .map(|&op| {
                Json::object([
                    ("op", Json::Str(op.name().into())),
                    (
                        "requests",
                        Json::Int(
                            self.stats.op_requests[op.index()].load(Ordering::Relaxed) as i128
                        ),
                    ),
                    (
                        "errors",
                        Json::Int(self.stats.op_errors[op.index()].load(Ordering::Relaxed) as i128),
                    ),
                    (
                        "latency",
                        latency_summary_json(&self.stats.op_latency[op.index()]),
                    ),
                ])
            })
            .collect();
        let (slow_seen, slow_recent) = self.slow.snapshot();
        let slow = Json::object([
            ("threshold_ms", Json::Int(self.slow_query_ms as i128)),
            ("seen", Json::Int(slow_seen as i128)),
            (
                "recent",
                Json::Array(
                    slow_recent
                        .iter()
                        .map(|q| {
                            Json::object([
                                ("op", Json::Str(q.op.into())),
                                ("duration_us", Json::Int(q.duration_us as i128)),
                                ("request", Json::Str(q.request.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let lru = self.lru.lock().expect("lru poisoned");
        Json::object([
            ("graph", Json::Str(self.served.name.clone())),
            ("n", Json::Int(self.served.n as i128)),
            ("m", Json::Int(self.served.m as i128)),
            ("h_values", Json::Array(hs)),
            ("patterns", Json::Array(patterns)),
            ("indexes", Json::Array(decompositions)),
            ("uptime_ms", Json::Int(self.stats.uptime_ms() as i128)),
            (
                "requests",
                Json::Int(self.stats.requests.load(Ordering::Relaxed) as i128),
            ),
            (
                "connections",
                Json::Int(self.stats.connections.load(Ordering::Relaxed) as i128),
            ),
            (
                "panics",
                Json::Int(self.stats.panics.load(Ordering::Relaxed) as i128),
            ),
            (
                "shed",
                Json::Int(self.stats.sheds.load(Ordering::Relaxed) as i128),
            ),
            (
                "worker_respawns",
                Json::Int(self.stats.worker_respawns.load(Ordering::Relaxed) as i128),
            ),
            ("ops", Json::Array(ops)),
            ("latency", latency_summary_json(&self.stats.latency)),
            ("slow_queries", slow),
            (
                "lru",
                Json::object([
                    (
                        "hits",
                        Json::Int(self.stats.lru_hits.load(Ordering::Relaxed) as i128),
                    ),
                    (
                        "misses",
                        Json::Int(self.stats.lru_misses.load(Ordering::Relaxed) as i128),
                    ),
                    ("entries", Json::Int(lru.len() as i128)),
                    ("capacity", Json::Int(lru.capacity() as i128)),
                ]),
            ),
            // Process totals since start (shared serializer with `lhcds
            // stats --json`). On a healthy daemon max_flow_invocations
            // freezes after index build: the read path runs zero flow.
            ("flow", flow_stats_json(&lhcds_core::flow_stats())),
        ])
    }

    /// The `metrics` op: Prometheus text exposition, carried as a
    /// string field of the JSON result (the protocol stays one JSON
    /// line per response; `lhcds query metrics` prints it raw).
    fn metrics_json(&self) -> Json {
        Json::object([
            (
                "content_type",
                Json::Str("text/plain; version=0.0.4".into()),
            ),
            ("exposition", Json::Str(self.metrics_text())),
        ])
    }

    /// Renders the Prometheus-style text exposition. Every metric and
    /// label is emitted unconditionally (zeros included), so the shape
    /// is deterministic and CI can grep it.
    fn metrics_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        let uptime_ms = s.uptime_ms();
        let _ = writeln!(
            out,
            "# HELP lhcds_uptime_seconds Seconds since the daemon started.\n\
             # TYPE lhcds_uptime_seconds gauge\n\
             lhcds_uptime_seconds {}.{:03}",
            uptime_ms / 1000,
            uptime_ms % 1000
        );
        let _ = writeln!(
            out,
            "# HELP lhcds_connections_total Connections accepted.\n\
             # TYPE lhcds_connections_total counter\n\
             lhcds_connections_total {}",
            s.connections.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# HELP lhcds_panics_total Request executions that panicked (caught per request, answered as typed internal errors).\n\
             # TYPE lhcds_panics_total counter\n\
             lhcds_panics_total {}\n\
             # HELP lhcds_shed_total Connections shed at admission with a typed overloaded error.\n\
             # TYPE lhcds_shed_total counter\n\
             lhcds_shed_total {}\n\
             # HELP lhcds_worker_respawns_total Worker threads revived after a panic escaped a connection.\n\
             # TYPE lhcds_worker_respawns_total counter\n\
             lhcds_worker_respawns_total {}",
            s.panics.load(Ordering::Relaxed),
            s.sheds.load(Ordering::Relaxed),
            s.worker_respawns.load(Ordering::Relaxed)
        );
        out.push_str(
            "# HELP lhcds_requests_total Requests answered, by op.\n\
             # TYPE lhcds_requests_total counter\n",
        );
        for &op in &OpKind::ALL {
            let _ = writeln!(
                out,
                "lhcds_requests_total{{op=\"{}\"}} {}",
                op.name(),
                s.op_requests[op.index()].load(Ordering::Relaxed)
            );
        }
        out.push_str(
            "# HELP lhcds_errors_total Error responses, by op.\n\
             # TYPE lhcds_errors_total counter\n",
        );
        for &op in &OpKind::ALL {
            let _ = writeln!(
                out,
                "lhcds_errors_total{{op=\"{}\"}} {}",
                op.name(),
                s.op_errors[op.index()].load(Ordering::Relaxed)
            );
        }
        out.push_str(
            "# HELP lhcds_request_duration_microseconds Request wall time, by op.\n\
             # TYPE lhcds_request_duration_microseconds summary\n",
        );
        let mut summary = |op: Option<OpKind>, h: &Histogram| {
            // op-labelled rows per op, plus unlabelled overall rows
            let label = op.map(|o| format!("op=\"{}\",", o.name()));
            let suffix = op.map(|o| format!("{{op=\"{}\"}}", o.name()));
            for (q, v) in [("0.5", h.p50()), ("0.99", h.p99()), ("0.999", h.p999())] {
                let _ = writeln!(
                    out,
                    "lhcds_request_duration_microseconds{{{}quantile=\"{q}\"}} {v}",
                    label.as_deref().unwrap_or("")
                );
            }
            let _ = writeln!(
                out,
                "lhcds_request_duration_microseconds_sum{} {}",
                suffix.as_deref().unwrap_or(""),
                h.sum()
            );
            let _ = writeln!(
                out,
                "lhcds_request_duration_microseconds_count{} {}",
                suffix.as_deref().unwrap_or(""),
                h.count()
            );
        };
        for &op in &OpKind::ALL {
            summary(Some(op), &s.op_latency[op.index()]);
        }
        summary(None, &s.latency);
        let (slow_seen, _) = self.slow.snapshot();
        let _ = writeln!(
            out,
            "# HELP lhcds_slow_queries_total Requests at or over the slow-query threshold.\n\
             # TYPE lhcds_slow_queries_total counter\n\
             lhcds_slow_queries_total {slow_seen}\n\
             # HELP lhcds_slow_query_threshold_milliseconds The slow-query threshold.\n\
             # TYPE lhcds_slow_query_threshold_milliseconds gauge\n\
             lhcds_slow_query_threshold_milliseconds {}",
            self.slow_query_ms
        );
        let lru = self.lru.lock().expect("lru poisoned");
        let _ = writeln!(
            out,
            "# HELP lhcds_lru_hits_total Hot-answer cache hits.\n\
             # TYPE lhcds_lru_hits_total counter\n\
             lhcds_lru_hits_total {}\n\
             # HELP lhcds_lru_misses_total Hot-answer cache misses.\n\
             # TYPE lhcds_lru_misses_total counter\n\
             lhcds_lru_misses_total {}\n\
             # HELP lhcds_lru_entries Hot-answer cache entries.\n\
             # TYPE lhcds_lru_entries gauge\n\
             lhcds_lru_entries {}",
            s.lru_hits.load(Ordering::Relaxed),
            s.lru_misses.load(Ordering::Relaxed),
            lru.len()
        );
        drop(lru);
        let _ = writeln!(
            out,
            "# HELP lhcds_index_subgraphs Frozen subgraphs per served index.\n\
             # TYPE lhcds_index_subgraphs gauge"
        );
        for (key, idx) in &self.served.indexes {
            let _ = writeln!(
                out,
                "lhcds_index_subgraphs{{pattern=\"{key}\"}} {}",
                idx.len()
            );
        }
        // a few flow-layer counters (process totals; frozen after index
        // build on a healthy daemon — the read path runs zero flow)
        let flow = lhcds_core::flow_stats();
        let _ = writeln!(
            out,
            "# HELP lhcds_flow_max_flow_invocations_total Max-flow solves since process start.\n\
             # TYPE lhcds_flow_max_flow_invocations_total counter\n\
             lhcds_flow_max_flow_invocations_total {}\n\
             # HELP lhcds_flow_networks_built_total Flow networks built since process start.\n\
             # TYPE lhcds_flow_networks_built_total counter\n\
             lhcds_flow_networks_built_total {}\n\
             # HELP lhcds_flow_warm_solves_total Warm-started max-flow solves.\n\
             # TYPE lhcds_flow_warm_solves_total counter\n\
             lhcds_flow_warm_solves_total {}",
            flow.max_flow_invocations, flow.networks_built, flow.warm_solves
        );
        out
    }
}

/// A handle that can stop a running [`Server`] from any thread (the
/// CLI's signal handler, tests, or the daemon itself on the `shutdown`
/// op).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Requests a graceful stop: no new connections, in-flight requests
    /// answered, then all threads exit.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a stop has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping without [`Server::join`] detaches the
/// threads; prefer `shutdown_handle().shutdown()` + `join()`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop plus the fixed worker pool.
    pub fn bind(
        addr: impl ToSocketAddrs,
        served: ServedIndexes,
        opts: &ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            served,
            stats: ServerStats::new(),
            lru: Mutex::new(Lru::new(opts.lru_capacity.max(1))),
            stop: AtomicBool::new(false),
            slow_query_ms: opts.slow_query_ms,
            slow: Ring::new(SLOW_RING_CAP),
            max_request_bytes: opts.max_request_bytes.max(1),
            deadline: (opts.request_deadline_ms > 0)
                .then(|| Duration::from_millis(opts.request_deadline_ms)),
            max_pending: opts.max_pending.max(1),
            pending: AtomicU64::new(0),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..opts.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lhcds-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker")
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("lhcds-serve-accept".into())
            .spawn(move || accept_loop(&listener, &tx, &accept_shared))
            .expect("spawn acceptor");

        Ok(Server {
            addr,
            shared,
            accept_thread,
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable handle that can request a graceful stop.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Whether a stop has been requested (by a handle or the protocol).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Requests answered so far (ok or error).
    pub fn requests_served(&self) -> u64 {
        self.shared.stats.requests.load(Ordering::Relaxed)
    }

    /// Live telemetry: per-op counters and latency histograms. The
    /// bench harness reads percentiles from here instead of sampling
    /// client-side, so recorded numbers match what `stats` serves.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// LRU (hits, misses) so far.
    pub fn lru_counters(&self) -> (u64, u64) {
        (
            self.shared.stats.lru_hits.load(Ordering::Relaxed),
            self.shared.stats.lru_misses.load(Ordering::Relaxed),
        )
    }

    /// Blocks until the server has fully stopped (all threads joined).
    /// Call [`ShutdownHandle::shutdown`] first, or rely on the protocol
    /// `shutdown` op / the CLI signal handler.
    ///
    /// A panicked thread is joined, not propagated: the caller asked
    /// the daemon to stop, and the panic was already counted (see
    /// [`ServerStats::panics`] / [`ServerStats::worker_respawns`]) —
    /// re-raising it here would turn a survived fault into a crash at
    /// the very end of a clean shutdown.
    pub fn join(self) {
        let _ = self.accept_thread.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Sheds one connection at admission: answer the typed `overloaded`
/// error (best effort — the client may not even be reading yet) and
/// close. Runs on the accept thread, so the write must not block long;
/// the error line is far smaller than any socket send buffer.
fn shed(mut stream: TcpStream, shared: &Shared) {
    shared.stats.sheds.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let e = ProtocolError::new(
        "overloaded",
        format!(
            "server is at its admission limit ({} queued connections); retry with backoff",
            shared.max_pending
        ),
    );
    let _ = stream.write_all(err_response(&e).as_bytes());
    let _ = stream.flush();
}

/// Whether an accepted connection clears the admission bound. On `true`
/// the pending gauge has been incremented (workers decrement on
/// pickup); on `false` the caller must shed.
fn admit(shared: &Shared) -> bool {
    if shared.pending.load(Ordering::Relaxed) >= shared.max_pending as u64 {
        return false;
    }
    shared.pending.fetch_add(1, Ordering::Relaxed);
    true
}

fn accept_loop(listener: &TcpListener, tx: &mpsc::Sender<TcpStream>, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                if !admit(shared) {
                    shed(stream, shared);
                    continue;
                }
                if tx.send(stream).is_err() {
                    return; // all workers gone (only on stop)
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                std::thread::sleep(POLL);
            }
            // transient accept errors (e.g. a connection reset between
            // queue and accept) must not kill the daemon
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Graceful drain: clients whose connect(2) already succeeded are
    // sitting in the kernel backlog even though we never accept(2)ed
    // them. Hand them to the workers too — their requests count as
    // in-flight. The listener is non-blocking, so this terminates at
    // WouldBlock (retrying EINTR: a signal is exactly what triggers
    // shutdown in the CLI path, and it must not truncate the drain).
    // Dropping `tx` afterwards is what lets the workers finish: they
    // serve until the queue disconnects.
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                if !admit(shared) {
                    shed(stream, shared);
                    continue;
                }
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, shared: &Shared) {
    loop {
        // No stop-flag check here on purpose: a worker runs until the
        // accept thread has drained the backlog and dropped the sender
        // (Disconnected) — that is the "in-flight requests are
        // answered" half of graceful shutdown. Hold the lock only
        // while polling, so workers take turns.
        let next = rx.lock().expect("worker queue poisoned").recv_timeout(POLL);
        match next {
            Ok(stream) => {
                shared.pending.fetch_sub(1, Ordering::Relaxed);
                // Per-worker panic boundary. The per-request guard in
                // `dispatch` already answers panicking requests with a
                // typed error, so nothing should ever reach this one —
                // but if it does, the worker revives in place (counted)
                // instead of silently shrinking the pool.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, shared)
                }));
                if outcome.is_err() {
                    shared.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

enum LineOutcome {
    /// A complete line, plus when its first byte arrived (the
    /// per-request deadline clock starts there).
    Line(Vec<u8>, Instant),
    /// EOF or I/O error: drop the connection.
    Close,
    /// Stop requested while idle between requests.
    Stopped,
    /// The line exceeded the request byte limit. The excess was
    /// discarded (not buffered) through the terminating newline, so
    /// the connection survives to carry the typed `too_large` answer.
    TooLarge,
}

/// After a stop, how many read-timeout cycles a *partially received*
/// request line is given to complete before the connection is dropped.
/// A request only counts as in-flight once its bytes have fully
/// arrived; without this bound, one client holding a half-written line
/// open would park a worker forever and `Server::join` would hang.
const STOP_GRACE_POLLS: u32 = 3;

/// Reads one `\n`-framed line, polling the stop flag while idle.
/// Bytes that have already arrived are always served before a stop is
/// honored — that is the "in-flight requests are answered" guarantee.
/// A partial line gets [`STOP_GRACE_POLLS`] timeouts to finish after a
/// stop, then the connection is closed.
///
/// A line over `max_line` bytes switches the reader into discard mode:
/// the buffered prefix is dropped and every further byte is consumed
/// without being stored until the newline, so a 10 MiB line costs one
/// `BufReader` buffer of memory, not 10 MiB — then [`LineOutcome::TooLarge`]
/// lets the caller answer with the typed error and keep the connection.
fn read_line(reader: &mut BufReader<TcpStream>, stop: &AtomicBool, max_line: usize) -> LineOutcome {
    if fault::should_fire(FaultPoint::SocketRead) {
        return LineOutcome::Close; // injected: the socket read failed
    }
    // Injected slow read: stall the completed line below, as if its
    // bytes had trickled in — the deadline clock is already running.
    let stall = fault::should_fire(FaultPoint::SlowRead);
    let mut line: Vec<u8> = Vec::new();
    let mut started: Option<Instant> = None;
    let mut discarding = false;
    let mut stop_polls = 0u32;
    loop {
        let (consumed, done) = match reader.fill_buf() {
            Ok([]) => return LineOutcome::Close,
            Ok(buf) => {
                if started.is_none() {
                    started = Some(Instant::now());
                }
                match buf.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        if !discarding {
                            line.extend_from_slice(&buf[..pos]);
                        }
                        (pos + 1, true)
                    }
                    None => {
                        if !discarding {
                            line.extend_from_slice(buf);
                        }
                        (buf.len(), false)
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    if started.is_none() {
                        return LineOutcome::Stopped;
                    }
                    stop_polls += 1;
                    if stop_polls > STOP_GRACE_POLLS {
                        return LineOutcome::Close;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Close,
        };
        reader.consume(consumed);
        if done {
            if stall {
                std::thread::sleep(SLOW_READ_STALL);
            }
            if discarding {
                return LineOutcome::TooLarge;
            }
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return LineOutcome::Line(line, started.unwrap_or_else(Instant::now));
        }
        if !discarding && line.len() > max_line {
            discarding = true;
            line = Vec::new(); // free the oversized prefix immediately
        }
    }
}

/// Writes one response line, honoring the injected socket-write faults:
/// `socket_write` fails before any byte leaves, `partial_write`
/// delivers a prefix then fails. Either way the caller drops the
/// connection — a torn response must never be followed by another.
fn write_response(writer: &mut TcpStream, response: &str) -> std::io::Result<()> {
    if fault::should_fire(FaultPoint::SocketWrite) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected socket write error",
        ));
    }
    if fault::should_fire(FaultPoint::PartialWrite) {
        writer.write_all(&response.as_bytes()[..response.len() / 2])?;
        writer.flush()?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected partial write",
        ));
    }
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_line(&mut reader, &shared.stop, shared.max_request_bytes) {
            LineOutcome::Close | LineOutcome::Stopped => return,
            LineOutcome::TooLarge => {
                let response = shared.oversized_response();
                if write_response(&mut writer, &response).is_err() {
                    return;
                }
            }
            LineOutcome::Line(raw, received) => {
                if raw.iter().all(|b| b.is_ascii_whitespace()) {
                    continue; // tolerate blank lines (interactive use)
                }
                let (response, is_shutdown) = match std::str::from_utf8(&raw) {
                    Ok(line) => shared.respond_received(line, received),
                    Err(_) => (
                        Arc::new(err_response(&ProtocolError::new(
                            "bad_request",
                            "request line is not valid utf-8",
                        ))),
                        false,
                    ),
                };
                // Flip the stop flag *before* acknowledging: once the
                // client reads the response, `is_shutting_down()` must
                // already be true (clients assert exactly that).
                if is_shutdown {
                    shared.stop.store(true, Ordering::SeqCst);
                }
                if write_response(&mut writer, &response).is_err() {
                    return; // client went away mid-response
                }
                if is_shutdown {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhcds_core::index::{DecompositionIndex, IndexConfig};
    use lhcds_graph::CsrGraph;

    fn served() -> ServedIndexes {
        let g = CsrGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 5),
            ],
        );
        let mut served = ServedIndexes {
            name: "unit".into(),
            n: g.n(),
            m: g.m(),
            original_ids: None,
            indexes: BTreeMap::new(),
            failed: BTreeMap::new(),
        };
        served.insert(DecompositionIndex::build(&g, 3, &IndexConfig::default()));
        served.insert(lhcds_patterns::build_pattern_index(
            &g,
            Pattern::Cycle4,
            &IndexConfig::default(),
        ));
        served
    }

    fn shared() -> Shared {
        shared_with_slow_ring(100, SLOW_RING_CAP)
    }

    fn shared_with_slow_ring(slow_query_ms: u64, cap: usize) -> Shared {
        shared_for(served(), slow_query_ms, cap)
    }

    fn shared_for(served: ServedIndexes, slow_query_ms: u64, cap: usize) -> Shared {
        Shared {
            served,
            stats: ServerStats::new(),
            lru: Mutex::new(Lru::new(4)),
            stop: AtomicBool::new(false),
            slow_query_ms,
            slow: Ring::new(cap),
            max_request_bytes: 64 * 1024,
            deadline: None,
            max_pending: 1024,
            pending: AtomicU64::new(0),
        }
    }

    #[test]
    fn respond_handles_every_op_and_never_panics() {
        let s = shared();
        for line in [
            r#"{"op":"ping"}"#,
            r#"{"op":"stats"}"#,
            r#"{"op":"metrics"}"#,
            r#"{"op":"health"}"#,
            r#"{"op":"top_k","h":3,"k":2}"#,
            r#"{"op":"top_k","pattern":"4-loop","k":2}"#,
            r#"{"op":"top_k","pattern":"triangle","k":2}"#,
            r#"{"op":"density_of","h":3,"vertex":0}"#,
            r#"{"op":"density_of","pattern":"4-loop","vertex":0}"#,
            r#"{"op":"membership","h":3,"vertex":4}"#,
            r#"{"op":"membership","pattern":"4-loop","vertex":4}"#,
            "garbage",
            r#"{"op":"top_k","h":9,"k":2}"#,
            r#"{"op":"top_k","pattern":"diamond","k":2}"#,
            r#"{"op":"top_k","pattern":"no-such","k":2}"#,
            r#"{"op":"top_k","pattern":"4-loop","h":3,"k":2}"#,
            r#"{"op":"top_k","h":3,"k":0}"#,
            r#"{"op":"top_k","h":3,"k":100000}"#,
            r#"{"op":"density_of","h":3,"vertex":99}"#,
        ] {
            let (resp, is_shutdown) = s.respond(line);
            assert!(!is_shutdown);
            let v = Json::parse(resp.trim_end()).unwrap();
            assert!(v.get("ok").is_some(), "{line}");
        }
        let (_, is_shutdown) = s.respond(r#"{"op":"shutdown"}"#);
        assert!(is_shutdown);
    }

    #[test]
    fn lru_serves_repeats_from_cache() {
        let s = shared();
        let (a, _) = s.respond(r#"{"op":"top_k","h":3,"k":2}"#);
        let (b, _) = s.respond(r#"{"op":"top_k","h":3,"k":2}"#);
        assert_eq!(a, b);
        assert_eq!(s.stats.lru_misses.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.lru_hits.load(Ordering::Relaxed), 1);
        // errors are not cached
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":0}"#);
        assert_eq!(s.stats.lru_misses.load(Ordering::Relaxed), 1);
        // every spelling of the same index shares one cache entry
        let (c, _) = s.respond(r#"{"op":"top_k","pattern":"triangle","k":2}"#);
        let (d, _) = s.respond(r#"{"op":"top_k","pattern":"3-clique","k":2}"#);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(s.stats.lru_misses.load(Ordering::Relaxed), 1);
        assert_eq!(s.stats.lru_hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pattern_resolution_maps_to_stable_error_codes() {
        let s = shared();
        let code_of = |line: &str| -> String {
            let (resp, _) = s.respond(line);
            let v = Json::parse(resp.trim_end()).unwrap();
            match v.get("error") {
                Some(e) => e.get("code").unwrap().as_str().unwrap().to_string(),
                None => "ok".into(),
            }
        };
        // served under clique.h3 + 4-loop (see `served()`)
        assert_eq!(code_of(r#"{"op":"top_k","h":3,"k":1}"#), "ok");
        assert_eq!(code_of(r#"{"op":"top_k","pattern":"4-loop","k":1}"#), "ok");
        // redundant-but-consistent h is accepted
        assert_eq!(
            code_of(r#"{"op":"top_k","pattern":"4-loop","h":4,"k":1}"#),
            "ok"
        );
        // a bare h keeps the pre-pattern bad_h contract
        assert_eq!(code_of(r#"{"op":"top_k","h":9,"k":1}"#), "bad_h");
        // known pattern, not served here
        assert_eq!(
            code_of(r#"{"op":"top_k","pattern":"diamond","k":1}"#),
            "bad_pattern"
        );
        // unknown pattern name
        assert_eq!(
            code_of(r#"{"op":"top_k","pattern":"frob","k":1}"#),
            "bad_pattern"
        );
        // contradictory h + pattern
        assert_eq!(
            code_of(r#"{"op":"top_k","pattern":"4-loop","h":3,"k":1}"#),
            "bad_pattern"
        );
    }

    #[test]
    fn per_op_counters_classify_requests_and_errors() {
        let s = shared();
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":2}"#);
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":0}"#); // bad_k error
        let _ = s.respond(r#"{"op":"ping"}"#);
        let _ = s.respond("garbage");
        let load = |arr: &[AtomicU64; OpKind::ALL.len()], op: OpKind| {
            arr[op.index()].load(Ordering::Relaxed)
        };
        assert_eq!(load(&s.stats.op_requests, OpKind::TopK), 2);
        assert_eq!(load(&s.stats.op_errors, OpKind::TopK), 1);
        assert_eq!(load(&s.stats.op_requests, OpKind::Ping), 1);
        assert_eq!(load(&s.stats.op_errors, OpKind::Ping), 0);
        assert_eq!(load(&s.stats.op_requests, OpKind::Invalid), 1);
        assert_eq!(load(&s.stats.op_errors, OpKind::Invalid), 1);
        assert_eq!(s.stats.requests.load(Ordering::Relaxed), 4);
        // every answered request lands in both histograms
        assert_eq!(s.stats.latency.count(), 4);
        assert_eq!(s.stats.op_latency[OpKind::TopK.index()].count(), 2);
    }

    #[test]
    fn slow_query_ring_respects_threshold_and_stays_bounded() {
        // a huge threshold retains nothing
        let s = shared_with_slow_ring(u64::MAX / 2_000, 4);
        for _ in 0..8 {
            let _ = s.respond(r#"{"op":"ping"}"#);
        }
        assert_eq!(s.slow.total(), 0);

        // threshold 0 retains everything, bounded by the ring capacity,
        // oldest evicted first
        let s = shared_with_slow_ring(0, 4);
        for k in 1..=8usize {
            let _ = s.respond(&format!(r#"{{"op":"top_k","h":3,"k":{k}}}"#));
        }
        let (seen, recent) = s.slow.snapshot();
        assert_eq!(seen, 8);
        assert_eq!(recent.len(), 4, "ring is bounded");
        // ordered: the survivors are the four most recent, oldest first
        let ks: Vec<String> = recent
            .iter()
            .map(|q| {
                q.request
                    .rsplit(':')
                    .next()
                    .unwrap()
                    .trim_end_matches('}')
                    .into()
            })
            .collect();
        assert_eq!(ks, ["5", "6", "7", "8"]);
        for q in &recent {
            assert_eq!(q.op, "top_k");
        }
    }

    #[test]
    fn stats_json_reports_ops_latency_and_slow_queries() {
        let s = shared_with_slow_ring(0, 4);
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":2}"#);
        let _ = s.respond(r#"{"op":"top_k","h":9,"k":2}"#); // bad_h
        let v = Json::parse(&s.stats_json().render()).unwrap();
        assert!(v.get("uptime_ms").unwrap().as_u64().is_some());
        let ops = v.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), OpKind::ALL.len());
        let topk = ops
            .iter()
            .find(|o| o.get("op").unwrap().as_str() == Some("top_k"))
            .unwrap();
        assert_eq!(topk.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(topk.get("errors").unwrap().as_u64(), Some(1));
        let lat = topk.get("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(2));
        assert!(lat.get("p999_us").unwrap().as_u64().is_some());
        let slow = v.get("slow_queries").unwrap();
        assert_eq!(slow.get("threshold_ms").unwrap().as_u64(), Some(0));
        assert_eq!(slow.get("seen").unwrap().as_u64(), Some(2));
        assert_eq!(slow.get("recent").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn metrics_exposition_has_the_expected_shape() {
        let s = shared();
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":2}"#);
        let _ = s.respond(r#"{"op":"top_k","h":3,"k":0}"#);
        let (resp, _) = s.respond(r#"{"op":"metrics"}"#);
        let v = Json::parse(resp.trim_end()).unwrap();
        let text = v
            .get("result")
            .unwrap()
            .get("exposition")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        for needle in [
            "# TYPE lhcds_uptime_seconds gauge",
            "lhcds_requests_total{op=\"top_k\"} 2",
            "lhcds_errors_total{op=\"top_k\"} 1",
            "lhcds_request_duration_microseconds{op=\"top_k\",quantile=\"0.99\"}",
            "lhcds_request_duration_microseconds_count{op=\"top_k\"} 2",
            "lhcds_request_duration_microseconds{quantile=\"0.5\"}",
            // the metrics request itself is recorded only after its
            // response renders, so the overall count here is 2
            "lhcds_request_duration_microseconds_count 2",
            "lhcds_slow_queries_total",
            "lhcds_panics_total 0",
            "lhcds_shed_total 0",
            "lhcds_worker_respawns_total 0",
            "lhcds_lru_misses_total 1",
            "lhcds_index_subgraphs{pattern=\"clique.h3\"}",
            "lhcds_flow_max_flow_invocations_total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // every exposition line is comment or `name[{labels}] value`
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, val)| !name.is_empty() && !val.contains(' ')),
                "malformed line: {line:?}"
            );
        }
    }

    #[test]
    fn remapped_ids_translate_both_ways() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let idx = DecompositionIndex::build(&g, 3, &IndexConfig::default());
        let mut indexes = BTreeMap::new();
        indexes.insert(idx.pattern().to_string(), idx);
        let s = shared_for(
            ServedIndexes {
                name: "remap".into(),
                n: 3,
                m: 3,
                original_ids: Some(vec![100, 200, 300]),
                indexes,
                failed: BTreeMap::new(),
            },
            100,
            SLOW_RING_CAP,
        );
        let (resp, _) = s.respond(r#"{"op":"membership","h":3,"vertex":200}"#);
        let v = Json::parse(resp.trim_end()).unwrap();
        let sub = v.get("result").unwrap().get("subgraph").unwrap();
        let verts: Vec<u64> = sub
            .get("vertices")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(verts, vec![100, 200, 300]);
        // a compact rank is NOT a valid wire id when a remap exists
        let (resp, _) = s.respond(r#"{"op":"density_of","h":3,"vertex":0}"#);
        let v = Json::parse(resp.trim_end()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn health_reports_ok_then_degraded_when_an_index_failed() {
        let s = shared();
        let (resp, _) = s.respond(r#"{"op":"health"}"#);
        let v = Json::parse(resp.trim_end()).unwrap();
        let r = v.get("result").unwrap();
        assert_eq!(r.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(r.get("indexes_failed").unwrap().as_u64(), Some(0));
        let rows = r.get("indexes").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2); // clique.h3 + 4-loop (see served())
        assert!(rows
            .iter()
            .all(|row| row.get("ready").unwrap().as_bool() == Some(true)));

        let mut served = served();
        served
            .failed
            .insert("5-path".into(), "injected index-load failure".into());
        let s = shared_for(served, 100, SLOW_RING_CAP);
        let (resp, _) = s.respond(r#"{"op":"health"}"#);
        let v = Json::parse(resp.trim_end()).unwrap();
        let r = v.get("result").unwrap();
        assert_eq!(r.get("status").unwrap().as_str(), Some("degraded"));
        assert_eq!(r.get("indexes_failed").unwrap().as_u64(), Some(1));
        let rows = r.get("indexes").unwrap().as_array().unwrap();
        let failed = rows
            .iter()
            .find(|row| row.get("ready").unwrap().as_bool() == Some(false))
            .expect("a failed row");
        assert_eq!(failed.get("pattern").unwrap().as_str(), Some("5-path"));
        assert!(failed.get("error").unwrap().as_str().is_some());
        // the degraded daemon still answers queries for what it has
        let (resp, _) = s.respond(r#"{"op":"top_k","h":3,"k":1}"#);
        assert!(resp.starts_with("{\"ok\":true"));
    }

    #[test]
    fn deadline_replaces_late_ok_answers_with_the_typed_error() {
        let mut s = shared();
        s.deadline = Some(Duration::from_millis(5));
        // a receipt instant far in the past simulates a request whose
        // line trickled in slowly (or whose execution dawdled)
        let received = Instant::now() - Duration::from_millis(50);
        let (resp, _) = s.respond_received(r#"{"op":"ping"}"#, received);
        let v = Json::parse(resp.trim_end()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some("deadline_exceeded")
        );
        // typed errors pass through untouched — never double-wrapped
        let (resp, _) = s.respond_received(r#"{"op":"top_k","h":9,"k":1}"#, received);
        let v = Json::parse(resp.trim_end()).unwrap();
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some("bad_h")
        );
        // a fresh request is unaffected
        let (resp, _) = s.respond(r#"{"op":"ping"}"#);
        assert!(resp.starts_with("{\"ok\":true"));
    }
}
