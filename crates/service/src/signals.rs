//! Minimal SIGINT/SIGTERM → flag bridge for the daemon.
//!
//! `std` exposes no signal API and the offline build cannot add the
//! `libc`/`ctrlc` crates, so this declares the one libc symbol it needs
//! (`signal(2)` — std already links libc on every unix target). The
//! handler does the only async-signal-safe thing there is to do: store
//! into a process-global atomic. The daemon's main loop polls
//! [`requested`] and turns it into a graceful
//! [`crate::server::ShutdownHandle::shutdown`].
//!
//! On non-unix targets [`install`] is a no-op and [`requested`] stays
//! false — the protocol `shutdown` op still works everywhere.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT (ctrl-c) or SIGTERM has arrived since [`install`].
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Test/support hook: fake an incoming signal (sets the same flag the
/// real handler sets).
pub fn request_now() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // The only safe thing in a signal handler: one atomic store.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)` from libc, which std links unconditionally on
        // unix. The return value (previous handler) is ignored.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Routes SIGINT and SIGTERM to the [`requested`] flag. Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_safe_and_flag_is_settable() {
        install();
        install(); // idempotent
                   // Cannot portably raise a real signal here without taking the
                   // whole test process down a non-deterministic path; the CLI
                   // integration relies on the same flag via request_now().
        assert!(!requested() || requested()); // readable either way
        request_now();
        assert!(requested());
    }
}
