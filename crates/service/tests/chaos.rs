//! Chaos suite: the daemon under deterministic fault injection.
//!
//! Pins the fault-tolerance contract: under every injection point the
//! `lhcds-obs` fault registry offers, every response a client manages
//! to read is either **byte-identical** to the fault-free answer or a
//! **typed error** (`too_large` | `deadline_exceeded` | `overloaded` |
//! `internal`) — never a silently wrong answer — and the daemon always
//! survives to serve the next request. Fault schedules are seeded, so
//! every run of this suite sees the same faults in the same places.
//!
//! The fault registry is process-global, so every test here serializes
//! on one mutex and disarms before releasing it — this binary is the
//! only place in the service crate where faults are armed (the unit
//! tests in `src/` run in parallel threads of their own process and
//! must never race an armed schedule).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use lhcds_core::index::{DecompositionIndex, IndexConfig};
use lhcds_graph::CsrGraph;
use lhcds_obs::fault::{self, FaultPoint, FaultSchedule};
use lhcds_service::client::{self, ClientError, RetryPolicy};
use lhcds_service::json::Json;
use lhcds_service::protocol::{IndexRef, Request};
use lhcds_service::server::{ServeOptions, ServedIndexes, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Serializes tests (the fault registry is process-global) and
/// guarantees a disarmed registry on entry and exit, even when the
/// previous test panicked while armed.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    fault::disarm();
    guard
}

/// RAII disarm: a panicking assertion must not leave the schedule
/// armed for the next test.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn figure2_served(k_max: usize) -> ServedIndexes {
    let g: CsrGraph = lhcds_data::figure2_graph();
    let idx = DecompositionIndex::build(
        &g,
        3,
        &IndexConfig {
            k_max,
            ..IndexConfig::default()
        },
    );
    let mut indexes = BTreeMap::new();
    indexes.insert(idx.pattern().to_string(), idx);
    ServedIndexes {
        name: "figure2".into(),
        n: g.n(),
        m: g.m(),
        original_ids: None,
        indexes,
        failed: BTreeMap::new(),
    }
}

fn bind(opts: &ServeOptions) -> (Server, String) {
    let server = Server::bind("127.0.0.1:0", figure2_served(8), opts).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn shutdown(server: Server) {
    server.shutdown_handle().shutdown();
    server.join();
}

const TOPK_LINE: &str = r#"{"op":"top_k","h":3,"k":2}"#;

/// The error code of an `ok:false` envelope, if `line` is one.
fn error_code(line: &str) -> Option<String> {
    let v = Json::parse(line).ok()?;
    match v.get("ok")?.as_bool()? {
        true => None,
        false => Some(v.get("error")?.get("code")?.as_str()?.to_string()),
    }
}

/// The capstone invariant: under every socket/worker injection point,
/// every readable response is byte-identical to the fault-free answer
/// or a typed error, and the daemon survives the whole barrage.
#[test]
fn every_injection_point_yields_exact_answers_or_typed_errors() {
    let _g = serial();
    let _d = Disarm;
    let (server, addr) = bind(&ServeOptions::default());

    // the fault-free answer, captured from the very daemon under test
    let expected = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("fault-free");
    assert!(expected.starts_with("{\"ok\":true"), "{expected}");

    for point in [
        FaultPoint::SocketRead,
        FaultPoint::SocketWrite,
        FaultPoint::PartialWrite,
        FaultPoint::SlowRead,
        FaultPoint::WorkerPanic,
    ] {
        fault::arm(FaultSchedule::new(0xC0FFEE).probability(point, 0.4));
        let mut ok = 0u32;
        let mut failed = 0u32;
        for i in 0..24 {
            match client::round_trip(&addr, TOPK_LINE, TIMEOUT) {
                // a complete, equal line is a correct answer; anything
                // else readable must be a typed error or a torn *prefix*
                // of the true answer (partial_write) — never altered
                // bytes presented as a whole answer
                Ok(line) if line == expected => ok += 1,
                Ok(line) => match error_code(&line) {
                    Some(code) => {
                        assert_eq!(code, "internal", "{point}: unexpected error on {i}");
                        failed += 1;
                    }
                    None => {
                        assert!(
                            expected.starts_with(&line),
                            "{point}: response is neither exact, typed, nor a torn prefix: {line}"
                        );
                        failed += 1;
                    }
                },
                // transport-level failure: the fault tore the
                // connection; no bytes were delivered, nothing to check
                Err(ClientError::Io(_) | ClientError::NoResponse) => failed += 1,
                Err(other) => panic!("{point}: unexpected client error {other}"),
            }
        }
        assert!(ok > 0, "{point}: every request failed at p=0.4");
        // a slow read alone (no deadline configured here) delays but
        // never fails a request — its firing shows only in the counter
        if point != FaultPoint::SlowRead {
            assert!(failed > 0, "{point}: schedule armed but nothing fired");
        }
        assert!(fault::fired(point) > 0, "{point}: fired counter silent");
        fault::disarm();

        // the daemon took the barrage and still answers, bit for bit
        let after = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("alive after faults");
        assert_eq!(after, expected, "{point}: daemon degraded after disarm");
    }
    shutdown(server);
}

/// A seeded schedule is reproducible: two identical barrages against
/// two fresh daemons fire the same faults at the same requests.
#[test]
fn seeded_fault_schedules_are_reproducible() {
    let _g = serial();
    let _d = Disarm;
    let run = || -> Vec<String> {
        let (server, addr) = bind(&ServeOptions::default());
        fault::arm(FaultSchedule::new(7).probability(FaultPoint::WorkerPanic, 0.5));
        let outcomes: Vec<String> = (0..16)
            .map(|_| match client::round_trip(&addr, TOPK_LINE, TIMEOUT) {
                Ok(line) => line,
                Err(e) => format!("err:{e}"),
            })
            .collect();
        fault::disarm();
        shutdown(server);
        outcomes
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, same fault pattern");
    assert!(
        first
            .iter()
            .any(|l| error_code(l).as_deref() == Some("internal")),
        "p=0.5 over 16 requests should panic at least once"
    );
    assert!(
        first.iter().any(|l| l.starts_with("{\"ok\":true")),
        "p=0.5 over 16 requests should succeed at least once"
    );
}

/// After an armed-then-disarmed run, the daemon's answers are
/// string-identical to a daemon that was never faulted at all.
#[test]
fn fault_free_rerun_is_string_identical_to_never_faulted_run() {
    let _g = serial();
    let _d = Disarm;
    let workload = [
        TOPK_LINE.to_string(),
        r#"{"op":"top_k","h":3,"k":1}"#.to_string(),
        r#"{"op":"density_of","h":3,"vertex":11}"#.to_string(),
        r#"{"op":"membership","h":3,"vertex":0}"#.to_string(),
        r#"{"op":"ping"}"#.to_string(),
        // (`health` is excluded: its `uptime_ms` legitimately differs
        // between two daemons — everything else must match to the byte)
    ];
    let collect = |addr: &str| -> Vec<String> {
        workload
            .iter()
            .map(|line| client::round_trip(addr, line, TIMEOUT).expect("workload"))
            .collect()
    };

    // daemon A survives a panic barrage, then is disarmed
    let (a, addr_a) = bind(&ServeOptions::default());
    fault::arm(FaultSchedule::new(3).probability(FaultPoint::WorkerPanic, 1.0));
    for _ in 0..4 {
        let line = client::round_trip(&addr_a, TOPK_LINE, TIMEOUT).expect("typed internal");
        assert_eq!(error_code(&line).as_deref(), Some("internal"));
    }
    fault::disarm();
    let healed = collect(&addr_a);

    // daemon B never saw a fault
    let (b, addr_b) = bind(&ServeOptions::default());
    let pristine = collect(&addr_b);

    assert_eq!(healed, pristine, "healed daemon must serve pristine bytes");
    shutdown(a);
    shutdown(b);
}

/// Satellite: after injected worker panics the pool still serves N
/// concurrent requests, and `stats` reports the panic count.
#[test]
fn pool_survives_panics_and_serves_concurrent_requests() {
    let _g = serial();
    let _d = Disarm;
    let (server, addr) = bind(&ServeOptions {
        workers: 4,
        ..ServeOptions::default()
    });

    fault::arm(FaultSchedule::new(11).probability(FaultPoint::WorkerPanic, 1.0));
    for _ in 0..4 {
        let line = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("caught panic");
        assert_eq!(error_code(&line).as_deref(), Some("internal"));
    }
    fault::disarm();

    // all four workers took a panic; the pool must still serve eight
    // concurrent clients correctly
    let expected = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("alive");
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    let line = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("concurrent");
                    assert_eq!(line, expected);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("concurrent client");
        }
    });

    let stats = client::query(&addr, &Request::Stats, TIMEOUT).expect("stats");
    assert_eq!(stats.get("panics").unwrap().as_u64(), Some(4));
    let metrics = client::query(&addr, &Request::Metrics, TIMEOUT).expect("metrics");
    let text = metrics.get("exposition").unwrap().as_str().unwrap();
    assert!(text.contains("lhcds_panics_total 4"), "{text}");
    shutdown(server);
}

/// Satellite: a 10 MiB request line gets the typed `too_large` error
/// and the connection — and daemon — survive to serve the next line.
#[test]
fn ten_mebibyte_line_is_rejected_as_too_large_without_harm() {
    let _g = serial();
    let (server, addr) = bind(&ServeOptions::default()); // 64 KiB limit

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(TIMEOUT)).unwrap();
    stream.set_write_timeout(Some(TIMEOUT)).unwrap();
    let mut line = vec![b'x'; 10 * 1024 * 1024];
    line.push(b'\n');
    stream.write_all(&line).expect("send 10 MiB");
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("typed answer");
    assert_eq!(
        error_code(response.trim_end()).as_deref(),
        Some("too_large")
    );

    // same connection keeps working once the oversized line is drained
    reader
        .get_mut()
        .write_all(b"{\"op\":\"ping\"}\n")
        .expect("next request");
    let mut pong = String::new();
    reader.read_line(&mut pong).expect("pong");
    assert!(pong.starts_with("{\"ok\":true"), "{pong}");
    shutdown(server);
}

/// Overload shedding: with the admission bound saturated, extra
/// connections get the typed `overloaded` answer immediately — and a
/// retrying client outlasts the burst.
#[test]
fn saturated_admission_sheds_with_typed_overloaded() {
    let _g = serial();
    let (server, addr) = bind(&ServeOptions {
        workers: 1,
        max_pending: 1,
        ..ServeOptions::default()
    });

    // occupy the only worker with a held-open connection (borrow, do
    // not clone: a clone would keep the socket open past the drop below)
    let mut busy = TcpStream::connect(&addr).expect("busy connect");
    busy.set_read_timeout(Some(TIMEOUT)).unwrap();
    busy.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    {
        let mut busy_reader = BufReader::new(&busy);
        let mut pong = String::new();
        busy_reader.read_line(&mut pong).expect("busy pong");
    }
    // …fill the single pending slot…
    let queued = TcpStream::connect(&addr).expect("queued connect");
    std::thread::sleep(Duration::from_millis(200));
    // …and watch the next connection get shed fast
    let overflowed = client::query(&addr, &Request::Ping, TIMEOUT);
    match overflowed {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "overloaded"),
        other => panic!("expected typed overloaded, got {other:?}"),
    }

    // a retrying client wins once the worker frees up
    let addr2 = addr.clone();
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        drop(busy); // worker moves on to the queued connection
        drop(queued);
    });
    let policy = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(200),
        seed: 9,
    };
    let pong = client::query_with_retry(&addr2, &Request::Ping, TIMEOUT, &policy)
        .expect("retry through the burst");
    assert_eq!(pong, Json::Str("pong".into()));
    release.join().unwrap();

    let stats = client::query(&addr, &Request::Stats, TIMEOUT).expect("stats");
    assert!(stats.get("shed").unwrap().as_u64().unwrap() >= 1);
    shutdown(server);
}

/// An injected slow read pushes a request past a tight deadline: the
/// answer is replaced by the typed `deadline_exceeded`, never delivered
/// late as if nothing happened.
#[test]
fn slow_read_past_the_deadline_yields_deadline_exceeded() {
    let _g = serial();
    let _d = Disarm;
    let (server, addr) = bind(&ServeOptions {
        request_deadline_ms: 10, // injected stall is 30 ms
        ..ServeOptions::default()
    });

    fault::arm(FaultSchedule::new(5).probability(FaultPoint::SlowRead, 1.0));
    let line = client::round_trip(&addr, TOPK_LINE, TIMEOUT).expect("typed answer");
    assert_eq!(error_code(&line).as_deref(), Some("deadline_exceeded"));
    fault::disarm();

    // disarmed, the same daemon with the same deadline answers normally
    let line = client::round_trip(&addr, r#"{"op":"ping"}"#, TIMEOUT).expect("pong");
    assert!(line.starts_with("{\"ok\":true"), "{line}");
    shutdown(server);
}

/// The `health` op: `ok` while every index is ready, `degraded` (with
/// the per-index error) when one failed to load.
#[test]
fn health_degrades_when_an_index_failed_to_load() {
    let _g = serial();
    let (server, addr) = bind(&ServeOptions::default());
    let health = client::query(&addr, &Request::Health, TIMEOUT).expect("health");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("indexes_ready").unwrap().as_u64(), Some(1));
    shutdown(server);

    let mut served = figure2_served(8);
    served
        .failed
        .insert("4-loop".into(), "injected index load failure".into());
    let server = Server::bind("127.0.0.1:0", served, &ServeOptions::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let health = client::query(&addr, &Request::Health, TIMEOUT).expect("health");
    assert_eq!(health.get("status").unwrap().as_str(), Some("degraded"));
    assert_eq!(health.get("indexes_failed").unwrap().as_u64(), Some(1));
    let rows = health.get("indexes").unwrap().as_array().unwrap();
    let failed_row = rows
        .iter()
        .find(|r| r.get("ready").and_then(Json::as_bool) == Some(false))
        .expect("failed row present");
    assert_eq!(failed_row.get("pattern").unwrap().as_str(), Some("4-loop"));
    assert_eq!(
        failed_row.get("error").unwrap().as_str(),
        Some("injected index load failure")
    );
    // the surviving index still answers
    let topk = client::query(
        &addr,
        &Request::TopK {
            index: IndexRef::clique(3),
            k: 1,
        },
        TIMEOUT,
    )
    .expect("degraded daemon still serves");
    assert_eq!(topk.get("found").unwrap().as_u64(), Some(1));
    shutdown(server);
}
