//! Acceptance suite of the query-serving subsystem.
//!
//! Pins the contract of `ISSUE 4`:
//!
//! * index-served answers are **identical** to a fresh IPPV run, for
//!   every `(h, k)` in the index's configured range, on the paper's
//!   Figure 2 fixture and on proptest-generated graphs;
//! * serving answers is **flow-free**: the query path never invokes
//!   Dinic (checked with `lhcds_flow::max_flow_invocations`);
//! * the daemon survives ≥ 4 concurrent connections and every flavor
//!   of malformed request, and shuts down gracefully with in-flight
//!   requests answered.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lhcds_core::index::{DecompositionIndex, IndexConfig};
use lhcds_core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds_graph::{CsrGraph, GraphBuilder, VertexId};
use lhcds_service::client;
use lhcds_service::json::Json;
use lhcds_service::protocol::{topk_result, AnswerRow, IndexRef, Request};
use lhcds_service::server::{ServeOptions, ServedIndexes, Server};
use proptest::prelude::*;

const TIMEOUT: Duration = Duration::from_secs(10);

fn figure2() -> CsrGraph {
    lhcds_data::figure2_graph()
}

fn served_for(g: &CsrGraph, hs: &[usize], k_max: usize) -> ServedIndexes {
    let cfg = IndexConfig {
        k_max,
        ..IndexConfig::default()
    };
    let mut indexes = BTreeMap::new();
    for &h in hs {
        let idx = DecompositionIndex::build(g, h, &cfg);
        indexes.insert(idx.pattern().to_string(), idx);
    }
    ServedIndexes {
        name: "test".into(),
        n: g.n(),
        m: g.m(),
        original_ids: None,
        indexes,
        failed: BTreeMap::new(),
    }
}

/// Index answers == fresh pipeline answers, for every (h, k) in range.
fn assert_index_matches_fresh(g: &CsrGraph, hs: &[usize], k_max: usize) {
    for &h in hs {
        let idx = DecompositionIndex::build(
            g,
            h,
            &IndexConfig {
                k_max,
                ..IndexConfig::default()
            },
        );
        for k in 1..=k_max {
            let fresh = top_k_lhcds(g, h, k, &IppvConfig::default());
            let served = idx.top_k(k).expect("k in range");
            assert_eq!(served.len(), fresh.subgraphs.len(), "h={h} k={k}");
            for (a, b) in served.iter().zip(&fresh.subgraphs) {
                assert_eq!(a.vertices, &b.vertices[..], "h={h} k={k}");
                assert_eq!(a.density, b.density, "h={h} k={k}");
                assert_eq!(a.clique_count, b.clique_count, "h={h} k={k}");
            }
        }
        // membership agrees with the full decomposition
        let full = top_k_lhcds(g, h, usize::MAX, &IppvConfig::default());
        let mut expected: Vec<Option<usize>> = vec![None; g.n()];
        for (rank, s) in full.subgraphs.iter().enumerate() {
            for &v in &s.vertices {
                expected[v as usize] = Some(rank + 1);
            }
        }
        for v in 0..g.n() as VertexId {
            let got = idx.membership(v).map(|view| view.rank);
            assert_eq!(got, expected[v as usize], "h={h} vertex={v}");
        }
    }
}

#[test]
fn figure2_index_identical_to_fresh_runs_for_all_h_and_k() {
    assert_index_matches_fresh(&figure2(), &[2, 3, 4], 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn proptest_index_identical_to_fresh_runs(bits in prop::collection::vec(prop::bool::weighted(0.45), 45)) {
        // n = 10, 45 potential edges
        let mut b = GraphBuilder::new();
        b.ensure_vertex(9);
        let mut idx = 0;
        for u in 0..10u32 {
            for v in u + 1..10 {
                if bits[idx] {
                    b.add_edge(u, v);
                }
                idx += 1;
            }
        }
        let g = b.build();
        assert_index_matches_fresh(&g, &[2, 3], 4);
    }
}

#[test]
fn serving_is_flow_free_end_to_end() {
    let g = figure2();
    // Build everything (the only flow-using phase) first…
    let served = served_for(&g, &[2, 3], 8);
    let server = Server::bind("127.0.0.1:0", served, &ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();

    // …then snapshot the max-flow counter and hammer the server.
    let flow_before = lhcds_flow::max_flow_invocations();
    for h in [2usize, 3] {
        for k in 1..=8usize {
            let r = client::query(
                &addr,
                &Request::TopK {
                    index: IndexRef::clique(h),
                    k,
                },
                TIMEOUT,
            )
            .unwrap();
            assert!(r.get("found").unwrap().as_u64().unwrap() <= k as u64);
        }
        for v in 0..g.n() as u64 {
            client::query(
                &addr,
                &Request::DensityOf {
                    index: IndexRef::clique(h),
                    vertex: v,
                },
                TIMEOUT,
            )
            .unwrap();
            client::query(
                &addr,
                &Request::Membership {
                    index: IndexRef::clique(h),
                    vertex: v,
                },
                TIMEOUT,
            )
            .unwrap();
        }
    }
    client::query(&addr, &Request::Stats, TIMEOUT).unwrap();
    assert_eq!(
        lhcds_flow::max_flow_invocations(),
        flow_before,
        "the query path must never touch the flow network"
    );

    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn served_answers_match_batch_serializer_exactly() {
    // The served top_k result must be string-identical to what the
    // batch path (CLI --json) produces from a fresh pipeline run.
    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    for k in [1usize, 2, 3, 8] {
        let served = client::query(
            &addr,
            &Request::TopK {
                index: IndexRef::clique(3),
                k,
            },
            TIMEOUT,
        )
        .unwrap();
        let fresh = top_k_lhcds(&g, 3, k, &IppvConfig::default());
        let ids = |v: VertexId| u64::from(v);
        let batch = topk_result(
            3,
            k,
            fresh.subgraphs.iter().map(|s| AnswerRow {
                vertices: &s.vertices,
                density: s.density,
                clique_count: s.clique_count,
            }),
            &ids,
        );
        assert_eq!(served.render(), batch.render(), "k={k}");
    }
    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn four_concurrent_connections_are_served_correctly() {
    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let reference = client::query(
        &addr,
        &Request::TopK {
            index: IndexRef::clique(3),
            k: 2,
        },
        TIMEOUT,
    )
    .unwrap()
    .render();

    const CLIENTS: usize = 4;
    const ROUNDS: usize = 25;
    let barrier = std::sync::Barrier::new(CLIENTS);
    let errors = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (addr, reference, barrier, errors) = (&addr, &reference, &barrier, &errors);
            scope.spawn(move || {
                barrier.wait();
                // each client holds ONE persistent connection and
                // pipelines sequential requests over it
                for round in 0..ROUNDS {
                    let got = client::query(
                        addr,
                        &Request::TopK {
                            index: IndexRef::clique(3),
                            k: 2,
                        },
                        TIMEOUT,
                    );
                    match got {
                        Ok(v) if v.render() == *reference => {}
                        other => {
                            eprintln!("client {c} round {round}: {other:?}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert!(server.requests_served() >= (CLIENTS * ROUNDS) as u64);
    let (hits, misses) = server.lru_counters();
    assert_eq!(misses, 1, "one serialization, everything else cached");
    assert!(hits >= (CLIENTS * ROUNDS - 1) as u64);
    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn malformed_requests_never_kill_the_daemon() {
    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 4),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let expect_err = |line: &str, code: &str| {
        let raw = client::round_trip(&addr, line, TIMEOUT).unwrap();
        let v = Json::parse(&raw).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{line}");
        assert_eq!(
            v.get("error").unwrap().get("code").unwrap().as_str(),
            Some(code),
            "{line}"
        );
    };
    expect_err("not json at all", "bad_request");
    expect_err("{}", "bad_request");
    expect_err(r#"{"op":"frobnicate"}"#, "unknown_op");
    expect_err(r#"{"op":"top_k","h":3}"#, "bad_request");
    expect_err(r#"{"op":"top_k","h":3,"k":0}"#, "bad_k");
    expect_err(r#"{"op":"top_k","h":3,"k":5}"#, "bad_k"); // beyond k_max=4
    expect_err(r#"{"op":"top_k","h":7,"k":1}"#, "bad_h");
    expect_err(r#"{"op":"density_of","h":3,"vertex":12345}"#, "bad_vertex");
    // non-utf8 bytes
    {
        use std::io::{BufRead, BufReader, Write};
        let mut s = std::net::TcpStream::connect(&addr).unwrap();
        s.write_all(b"\xff\xfe{bad utf8}\n").unwrap();
        s.flush().unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        assert!(line.contains("bad_request"), "{line}");
    }
    // an abruptly dropped connection is fine too
    drop(std::net::TcpStream::connect(&addr).unwrap());

    // after all that abuse, a good request still works
    let v = client::query(
        &addr,
        &Request::TopK {
            index: IndexRef::clique(3),
            k: 1,
        },
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(v.get("found").unwrap().as_u64(), Some(1));
    server.shutdown_handle().shutdown();
    server.join();
}

#[test]
fn graceful_shutdown_answers_in_flight_requests() {
    use std::io::{BufRead, BufReader, Write};

    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // open several persistent connections and park them idle
    let mut streams: Vec<std::net::TcpStream> = (0..3)
        .map(|_| std::net::TcpStream::connect(&addr).unwrap())
        .collect();
    // write a request on each, then immediately request shutdown: the
    // bytes are in flight — the daemon must still answer all of them
    for s in &mut streams {
        s.write_all(b"{\"op\":\"top_k\",\"h\":3,\"k\":1}\n")
            .unwrap();
        s.flush().unwrap();
    }
    let handle = server.shutdown_handle();
    handle.shutdown();
    assert!(handle.is_shutting_down());
    for s in streams {
        s.set_read_timeout(Some(TIMEOUT)).unwrap();
        let mut line = String::new();
        BufReader::new(s).read_line(&mut line).unwrap();
        let v = Json::parse(line.trim_end()).expect("in-flight request answered");
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }
    server.join(); // must return: all threads drain
}

#[test]
fn shutdown_does_not_hang_on_a_partial_request_line() {
    use std::io::Write;

    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    // a half-written request with no terminating newline, held open
    let mut hog = std::net::TcpStream::connect(&addr).unwrap();
    hog.write_all(b"{\"op\":").unwrap();
    hog.flush().unwrap();
    // make sure the worker has picked the connection up and is parked
    // in its read loop before the stop arrives
    std::thread::sleep(Duration::from_millis(200));

    let t0 = std::time::Instant::now();
    server.shutdown_handle().shutdown();
    server.join(); // must return: the partial line gets a bounded grace
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "join took {:?}",
        t0.elapsed()
    );
    drop(hog);
}

#[test]
fn protocol_shutdown_op_stops_the_server() {
    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let v = client::query(&addr, &Request::Shutdown, TIMEOUT).unwrap();
    assert_eq!(v.as_str(), Some("stopping"));
    assert!(server.is_shutting_down());
    server.join();
    // the port no longer accepts (give the OS a moment to tear down)
    std::thread::sleep(Duration::from_millis(50));
    let refused =
        std::net::TcpStream::connect_timeout(&addr.parse().unwrap(), Duration::from_millis(500));
    assert!(refused.is_err(), "listener must be closed after shutdown");
}

#[test]
fn stats_op_reports_shape_and_counters() {
    let g = figure2();
    let server = Server::bind(
        "127.0.0.1:0",
        served_for(&g, &[2, 3], 8),
        &ServeOptions::default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    client::query(
        &addr,
        &Request::TopK {
            index: IndexRef::clique(3),
            k: 2,
        },
        TIMEOUT,
    )
    .unwrap();
    client::query(
        &addr,
        &Request::TopK {
            index: IndexRef::clique(3),
            k: 2,
        },
        TIMEOUT,
    )
    .unwrap();
    let stats = client::query(&addr, &Request::Stats, TIMEOUT).unwrap();
    assert_eq!(stats.get("n").unwrap().as_u64(), Some(20));
    assert_eq!(stats.get("m").unwrap().as_u64(), Some(39));
    assert_eq!(stats.get("h_values").unwrap().as_array().unwrap().len(), 2);
    let patterns: Vec<&str> = stats
        .get("patterns")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p.as_str().unwrap())
        .collect();
    assert_eq!(patterns, ["clique.h2", "clique.h3"]);
    let lru = stats.get("lru").unwrap();
    assert_eq!(lru.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(lru.get("misses").unwrap().as_u64(), Some(1));
    // counters cover *completed* requests: the two top_k answers are
    // in, the stats request itself is still in flight while rendering
    assert!(stats.get("requests").unwrap().as_u64().unwrap() >= 2);
    assert!(stats.get("uptime_ms").unwrap().as_u64().is_some());
    // per-op telemetry: one row per OpKind, top_k at 2 requests with
    // a fully populated integer-µs latency summary
    let ops = stats.get("ops").unwrap().as_array().unwrap();
    let topk = ops
        .iter()
        .find(|o| o.get("op").unwrap().as_str() == Some("top_k"))
        .unwrap();
    assert_eq!(topk.get("requests").unwrap().as_u64(), Some(2));
    assert_eq!(topk.get("errors").unwrap().as_u64(), Some(0));
    for key in [
        "count", "sum_us", "min_us", "max_us", "p50_us", "p99_us", "p999_us",
    ] {
        assert!(
            topk.get("latency")
                .unwrap()
                .get(key)
                .unwrap()
                .as_u64()
                .is_some(),
            "missing latency key {key}"
        );
        assert!(
            stats
                .get("latency")
                .unwrap()
                .get(key)
                .unwrap()
                .as_u64()
                .is_some(),
            "missing overall latency key {key}"
        );
    }
    let slow = stats.get("slow_queries").unwrap();
    assert_eq!(slow.get("threshold_ms").unwrap().as_u64(), Some(100));
    assert!(slow.get("recent").unwrap().as_array().is_some());
    // flow-layer telemetry rides along (shared serializer with the CLI)
    let flow = stats.get("flow").unwrap();
    for key in [
        "networks_built",
        "arcs_built",
        "max_flow_invocations",
        "warm_solves",
        "retract_solves",
        "cold_solves",
        "first_build",
        "infeasible_reset",
        "scale_fallbacks",
        "ggt_recursions",
        "ggt_max_depth",
        "ggt_contracted_nodes",
        "ggt_arcs_saved",
    ] {
        assert!(flow.get(key).unwrap().as_u64().is_some(), "missing {key}");
    }
    // index construction ran flow; serving these queries must not have
    // — pinned precisely by the flow-free test below, sanity here:
    assert!(flow.get("networks_built").unwrap().as_u64().unwrap() >= 1);
    server.shutdown_handle().shutdown();
    server.join();
}

/// PR 8 tentpole: one daemon, one graph, several patterns — every
/// pattern's answers are identical to a fresh `top_k_lhxpds` run, and
/// serving them is flow-free.
#[test]
fn daemon_hosts_one_graph_under_many_patterns() {
    use lhcds_patterns::{build_pattern_index, top_k_lhxpds, Pattern};

    let g = figure2();
    let cfg = IndexConfig {
        k_max: 8,
        ..IndexConfig::default()
    };
    let patterns = [Pattern::Triangle, Pattern::Cycle4, Pattern::Star3];

    // Build the served indexes AND the fresh reference answers first —
    // both run flow; the serving phase afterwards must not.
    let mut indexes = BTreeMap::new();
    for p in patterns {
        let idx = build_pattern_index(&g, p, &cfg);
        indexes.insert(idx.pattern().to_string(), idx);
    }
    let mut fresh_topk = Vec::new(); // (pattern, k) -> rendered batch json
    let mut fresh_full = Vec::new(); // pattern -> full decomposition
    for p in patterns {
        for k in 1..=8usize {
            let fresh = top_k_lhxpds(&g, p, k, &IppvConfig::default());
            let ids = |v: VertexId| u64::from(v);
            let batch = topk_result(
                p.arity(),
                k,
                fresh.subgraphs.iter().map(|s| AnswerRow {
                    vertices: &s.vertices,
                    density: s.density,
                    clique_count: s.clique_count,
                }),
                &ids,
            );
            fresh_topk.push((p, k, batch.render()));
        }
        fresh_full.push((p, top_k_lhxpds(&g, p, usize::MAX, &IppvConfig::default())));
    }

    let served = ServedIndexes {
        name: "multi".into(),
        n: g.n(),
        m: g.m(),
        original_ids: None,
        indexes,
        failed: BTreeMap::new(),
    };
    let server = Server::bind("127.0.0.1:0", served, &ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let flow_before = lhcds_flow::max_flow_invocations();

    for (p, k, expected) in &fresh_topk {
        let got = client::query(
            &addr,
            &Request::TopK {
                index: IndexRef::pattern(p.to_string()),
                k: *k,
            },
            TIMEOUT,
        )
        .unwrap();
        assert_eq!(got.render(), *expected, "{p} k={k}");
    }
    for (p, full) in &fresh_full {
        let mut expected_rank: Vec<Option<usize>> = vec![None; g.n()];
        let mut expected_density: Vec<Option<String>> = vec![None; g.n()];
        for (rank, s) in full.subgraphs.iter().enumerate() {
            for &v in &s.vertices {
                expected_rank[v as usize] = Some(rank + 1);
                expected_density[v as usize] = Some(s.density.to_string());
            }
        }
        for v in 0..g.n() as u64 {
            let memb = client::query(
                &addr,
                &Request::Membership {
                    index: IndexRef::pattern(p.to_string()),
                    vertex: v,
                },
                TIMEOUT,
            )
            .unwrap();
            let got_rank = memb
                .get("subgraph")
                .and_then(|s| s.get("rank"))
                .and_then(|r| r.as_u64())
                .map(|r| r as usize);
            assert_eq!(got_rank, expected_rank[v as usize], "{p} vertex={v}");
            let dens = client::query(
                &addr,
                &Request::DensityOf {
                    index: IndexRef::pattern(p.to_string()),
                    vertex: v,
                },
                TIMEOUT,
            )
            .unwrap();
            let got_density = dens
                .get("density")
                .and_then(|d| d.as_str())
                .map(str::to_string);
            assert_eq!(got_density, expected_density[v as usize], "{p} vertex={v}");
        }
    }
    // the stats op lists every served pattern key
    let stats = client::query(&addr, &Request::Stats, TIMEOUT).unwrap();
    let keys: Vec<&str> = stats
        .get("patterns")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|p| p.as_str().unwrap())
        .collect();
    assert_eq!(keys, ["3-star", "4-loop", "clique.h3"]);

    assert_eq!(
        lhcds_flow::max_flow_invocations(),
        flow_before,
        "pattern serving must be flow-free"
    );
    server.shutdown_handle().shutdown();
    server.join();
}
