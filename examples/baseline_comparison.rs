//! Compare IPPV against the flow-only baselines (LDSflow / LTDS) and
//! the Greedy CDS extractor on one synthetic dataset — a miniature of
//! the paper's Figure 12 / Table 3 / Figure 14 experiments.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use std::time::Instant;

use lhcds::baselines::{greedy_top_k_cds, FlowLds};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::datasets::by_abbr;

fn main() {
    let d = by_abbr("CM").expect("registry").generate_scaled(0.12);
    let g = &d.graph;
    println!("CA-CondMat stand-in: {} vertices, {} edges", g.n(), g.m());

    // --- exact algorithms must agree; compare their cost -----------
    let t = Instant::now();
    let ippv = top_k_lhcds(g, 3, 5, &IppvConfig::default());
    let ippv_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let ltds = FlowLds::ltds().top_k(g, 5);
    let ltds_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(ippv.subgraphs, ltds.subgraphs, "exact algorithms agree");
    println!("\nh = 3, k = 5 (both exact, identical output):");
    println!(
        "  IPPV : {ippv_ms:8.1} ms  ({} flow verifications, {} shortcut accepts)",
        ippv.stats.flow_verifications, ippv.stats.shortcut_accepts
    );
    println!(
        "  LTDS : {ltds_ms:8.1} ms  ({} flow verifications)",
        ltds.stats.flow_verifications
    );
    println!("  speedup: {:.2}x", ltds_ms / ippv_ms.max(1e-9));

    let t = Instant::now();
    let _ = top_k_lhcds(g, 2, 5, &IppvConfig::default());
    let ippv2_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _ = FlowLds::ldsflow().top_k(g, 5);
    let lds_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nh = 2, k = 5: IPPV {ippv2_ms:.1} ms vs LDSflow {lds_ms:.1} ms ({:.2}x)",
        lds_ms / ippv2_ms.max(1e-9)
    );

    // --- Greedy: same top-1 density, no locality guarantee ----------
    let greedy = greedy_top_k_cds(g, 3, 5, 20);
    println!("\nIPPV vs Greedy (h = 3): size / density per rank");
    for i in 0..ippv.subgraphs.len().max(greedy.len()) {
        let ippv_cell = ippv
            .subgraphs
            .get(i)
            .map(|s| format!("{:>3} @ {}", s.vertices.len(), s.density))
            .unwrap_or_else(|| "-".into());
        let greedy_cell = greedy
            .get(i)
            .map(|s| format!("{:>3} @ {}", s.vertices.len(), s.density))
            .unwrap_or_else(|| "-".into());
        println!(
            "  rank {}: IPPV {ippv_cell:<16} Greedy {greedy_cell}",
            i + 1
        );
    }
    if let (Some(a), Some(b)) = (ippv.subgraphs.first(), greedy.first()) {
        assert_eq!(a.density, b.density, "top-1 CDS density agrees");
        println!("\ntop-1 densities agree (the global CDS is always an LhCDS).");
    }
}
