//! The paper's Figure 13 case study: top-1/top-2 LhCDS of the polbooks
//! co-purchase network for h = 2..=5, with community-label composition
//! and a DOT export for visualization.
//!
//! ```text
//! cargo run --release --example case_study_polbooks > polbooks.dot
//! ```
//! (the tables go to stderr; the DOT graph of the h = 4 result goes to
//! stdout, render with `dot -Tsvg polbooks.dot`).

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::polbooks_like;
use lhcds::graph::properties::edge_density;
use lhcds::graph::InducedSubgraph;

fn main() {
    let pb = polbooks_like();
    eprintln!(
        "polbooks-like: {} vertices, {} edges",
        pb.graph.n(),
        pb.graph.m()
    );

    let mut h4_regions: Vec<Vec<u32>> = Vec::new();
    for h in 2usize..=5 {
        let res = top_k_lhcds(&pb.graph, h, 2, &IppvConfig::default());
        eprintln!("-- h = {h}");
        for (i, s) in res.subgraphs.iter().enumerate() {
            let sub = InducedSubgraph::new(&pb.graph, &s.vertices);
            let mut counts = vec![0usize; pb.label_names.len()];
            for &v in &s.vertices {
                counts[pb.labels[v as usize] as usize] += 1;
            }
            let mix: Vec<String> = pb
                .label_names
                .iter()
                .zip(&counts)
                .filter(|&(_, &c)| c > 0)
                .map(|(n, c)| format!("{n}:{c}"))
                .collect();
            eprintln!(
                "   top-{}: size {:>2}, h-clique density {:<8} edge density {:.3}, labels [{}]",
                i + 1,
                s.vertices.len(),
                s.density.to_string(),
                edge_density(&sub.graph),
                mix.join(" ")
            );
            if h == 4 {
                h4_regions.push(s.vertices.clone());
            }
        }
    }

    // DOT export: steelblue = top-1, orange = top-2 (paper's palette).
    println!("graph polbooks {{");
    println!("  node [style=filled, shape=circle, label=\"\", width=0.12];");
    let color_of = |v: u32| -> &'static str {
        if h4_regions.first().is_some_and(|r| r.contains(&v)) {
            "steelblue"
        } else if h4_regions.get(1).is_some_and(|r| r.contains(&v)) {
            "orange"
        } else {
            match pb.labels[v as usize] {
                0 => "lightskyblue1",
                1 => "mistyrose",
                _ => "gray90",
            }
        }
    };
    for v in pb.graph.vertices() {
        println!("  v{v} [fillcolor={}];", color_of(v));
    }
    for (u, v) in pb.graph.edges() {
        println!("  v{u} -- v{v};");
    }
    println!("}}");
}
