//! Community search on a social-style network (the paper's motivating
//! use case, Figure 1): list the top-k non-overlapping near-clique
//! communities and report quality measures.
//!
//! ```text
//! cargo run --release --example community_search
//! ```

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::datasets::by_abbr;
use lhcds::data::harry_potter_like;
use lhcds::graph::properties::{average_clustering, diameter, edge_density};
use lhcds::graph::InducedSubgraph;

fn main() {
    // 1. The named Harry-Potter-like network: the family clique and the
    //    villain organization are the two densest communities.
    let hp = harry_potter_like();
    println!("== {} vertices, {} edges", hp.graph.n(), hp.graph.m());
    let res = top_k_lhcds(&hp.graph, 3, 2, &IppvConfig::default());
    for (i, s) in res.subgraphs.iter().enumerate() {
        let names: Vec<&str> = s
            .vertices
            .iter()
            .map(|&v| hp.vertex_names[v as usize].as_str())
            .collect();
        println!(
            "top-{} L3CDS (density {}): {}",
            i + 1,
            s.density,
            names.join(", ")
        );
    }

    // 2. A larger synthetic social network (Table 2 "HA" stand-in):
    //    discover communities at increasing clique strictness.
    let d = by_abbr("HA").expect("registry").generate_scaled(0.25);
    println!(
        "\n== soc-hamsterster stand-in: {} vertices, {} edges",
        d.graph.n(),
        d.graph.m()
    );
    for h in [2usize, 3, 5] {
        let res = top_k_lhcds(&d.graph, h, 3, &IppvConfig::default());
        println!("-- h = {h}: {} communities", res.subgraphs.len());
        for (i, s) in res.subgraphs.iter().enumerate() {
            let sub = InducedSubgraph::new(&d.graph, &s.vertices);
            println!(
                "   top-{}: |S| = {:>3}  density = {:<9} edge-density = {:.3}  diameter = {:?}  clustering = {:.3}",
                i + 1,
                s.vertices.len(),
                s.density.to_string(),
                edge_density(&sub.graph),
                diameter(&sub.graph),
                average_clustering(&sub.graph),
            );
        }
    }
}
