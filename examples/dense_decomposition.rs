//! Exact h-clique dense decomposition: compute every vertex's compact
//! number (§5.1 of the paper / Definition 4) and show how the LhCDS
//! answer is embedded in the level structure.
//!
//! ```text
//! cargo run --release --example dense_decomposition
//! ```

use lhcds::core::density::dense_decomposition;
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::figure2_graph;
use lhcds::data::gen::planted_communities;

fn main() {
    // 1. The paper's Figure 2 worked example: levels 13/6 > 2 > 4/3 > 1/2.
    let g = figure2_graph();
    let d = dense_decomposition(&g, 3);
    println!("Figure 2 graph — 3-clique dense decomposition:");
    for level in &d.levels {
        println!(
            "  φ₃ = {:<5} : {} vertices {:?}",
            level.density.to_string(),
            level.vertices.len(),
            level.vertices
        );
    }
    println!(
        "  (vertices in no triangle keep φ₃ = 0: {:?})",
        g.vertices()
            .filter(|&v| d.phi[v as usize] == lhcds::flow::Ratio::zero())
            .collect::<Vec<_>>()
    );

    // 2. The top-k LhCDSes are the *maximal* members of their levels:
    //    top-1 lives in the top level, and its density equals the level
    //    value (Theorem 1).
    let res = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
    for (i, s) in res.subgraphs.iter().enumerate() {
        println!(
            "  top-{} L3CDS: density {} == φ₃ of its {} members",
            i + 1,
            s.density,
            s.vertices.len()
        );
        assert!(s.vertices.iter().all(|&v| d.phi[v as usize] == s.density));
    }

    // 3. A larger generated graph: level profile as a histogram.
    let g = planted_communities(2000, 3, &[(22, 0.9), (16, 0.9), (12, 0.85)], 7);
    let d = dense_decomposition(&g, 3);
    println!(
        "\nplanted-community graph ({} vertices): {} non-zero levels",
        g.n(),
        d.levels.len()
    );
    for level in d.levels.iter().take(8) {
        println!(
            "  φ₃ ≈ {:>8.3} : {:>4} vertices",
            level.density.to_f64(),
            level.vertices.len()
        );
    }
    if d.levels.len() > 8 {
        println!("  … {} more levels", d.levels.len() - 8);
    }
}
