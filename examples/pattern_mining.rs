//! Locally pattern-densest subgraph discovery (§5 of the paper): mine
//! the polbooks-like co-purchase network with all six 4-vertex patterns
//! and compare what each pattern considers "dense".
//!
//! ```text
//! cargo run --release --example pattern_mining
//! ```

use lhcds::core::pipeline::IppvConfig;
use lhcds::data::polbooks_like;
use lhcds::patterns::{top_k_lhxpds, Pattern};

fn main() {
    let pb = polbooks_like();
    println!(
        "polbooks-like co-purchase network: {} vertices, {} edges, labels {:?}",
        pb.graph.n(),
        pb.graph.m(),
        pb.label_names
    );

    for pattern in Pattern::all_four_vertex() {
        let res = top_k_lhxpds(&pb.graph, pattern, 2, &IppvConfig::default());
        println!(
            "\n== pattern {pattern} ({} instances in the graph)",
            res.stats.clique_count
        );
        if res.subgraphs.is_empty() {
            println!("   no pattern-dense region");
            continue;
        }
        for (i, s) in res.subgraphs.iter().enumerate() {
            // label composition of the region
            let mut counts = vec![0usize; pb.label_names.len()];
            for &v in &s.vertices {
                counts[pb.labels[v as usize] as usize] += 1;
            }
            let mix: Vec<String> = pb
                .label_names
                .iter()
                .zip(&counts)
                .filter(|&(_, &c)| c > 0)
                .map(|(n, c)| format!("{n}: {c}"))
                .collect();
            println!(
                "   top-{}: {} vertices, pattern density {}, labels [{}]",
                i + 1,
                s.vertices.len(),
                s.density,
                mix.join(", ")
            );
        }
    }

    // The triangle pattern reproduces the L3CDS pipeline exactly.
    let tri = top_k_lhxpds(&pb.graph, Pattern::Triangle, 1, &IppvConfig::default());
    let l3 = lhcds::core::pipeline::top_k_lhcds(&pb.graph, 3, 1, &IppvConfig::default());
    assert_eq!(tri.subgraphs, l3.subgraphs);
    println!("\ntriangle pattern ≡ L3CDS pipeline: verified");
}
