//! Quickstart: find the top-k locally h-clique densest subgraphs of a
//! small graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::graph::GraphBuilder;

fn main() {
    // Build a graph with two planted dense regions: a 6-clique and a
    // 5-clique, joined to a sparse path.
    let mut b = GraphBuilder::new();
    for u in 0..6u32 {
        for v in u + 1..6 {
            b.add_edge(u, v);
        }
    }
    for u in 8..13u32 {
        for v in u + 1..13 {
            b.add_edge(u, v);
        }
    }
    b.add_edge(5, 6).add_edge(6, 7).add_edge(7, 8);
    let g = b.build();

    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // Top-2 locally 3-clique (triangle) densest subgraphs.
    let result = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
    for (i, s) in result.subgraphs.iter().enumerate() {
        println!(
            "top-{}: vertices {:?}, triangle density {} ({} triangles)",
            i + 1,
            s.vertices,
            s.density,
            s.clique_count,
        );
    }

    // The same machinery at h = 2 solves the classic locally densest
    // subgraph (LDS) problem.
    let lds = top_k_lhcds(&g, 2, 1, &IppvConfig::default());
    println!(
        "top-1 LDS (h = 2): {:?} at edge density {}",
        lds.subgraphs[0].vertices, lds.subgraphs[0].density
    );

    println!(
        "stats: {} cliques enumerated, {} verifications ({} by flow, {} shortcut)",
        result.stats.clique_count,
        result.stats.verifications,
        result.stats.flow_verifications,
        result.stats.shortcut_accepts,
    );
}
