//! # lhcds — facade crate
//!
//! Re-exports the public API of the LhCDS workspace — exact top-k
//! locally h-clique densest subgraph discovery (IPPV, SIGMOD 2024). The
//! two binaries (`lhcds-cli`, `lhcds-bench`) consume everything through
//! this crate, so the eight library crates stay an internal layering
//! detail: `graph → {clique, flow} → core → {patterns, baselines,
//! service}`, with `data` above patterns/baselines and `service`
//! alongside it. See the README for a guided tour,
//! `docs/ARCHITECTURE.md` for the paper-to-module map, and `examples/`
//! for runnable entry points.
//!
//! # Example
//!
//! ```
//! use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
//! use lhcds::data::figure2_graph;
//!
//! // The paper's Figure 2 worked example: the top-1 locally
//! // triangle-densest subgraph is S1 = {11..=16} at density 13/6.
//! let g = figure2_graph();
//! let result = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
//! assert_eq!(result.subgraphs[0].vertices, vec![11, 12, 13, 14, 15, 16]);
//! assert_eq!(result.subgraphs[0].density.to_string(), "13/6");
//! ```

#![warn(missing_docs)]

pub use lhcds_baselines as baselines;
pub use lhcds_clique as clique;
pub use lhcds_core as core;
pub use lhcds_data as data;
pub use lhcds_flow as flow;
pub use lhcds_graph as graph;
pub use lhcds_obs as obs;
pub use lhcds_patterns as patterns;
pub use lhcds_service as service;
