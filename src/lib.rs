//! # lhcds — facade crate
//!
//! Re-exports the public API of the LhCDS workspace. See the README for a
//! guided tour and `examples/` for runnable entry points.

pub use lhcds_baselines as baselines;
pub use lhcds_clique as clique;
pub use lhcds_core as core;
pub use lhcds_data as data;
pub use lhcds_flow as flow;
pub use lhcds_graph as graph;
pub use lhcds_patterns as patterns;
