//! Core-decomposition pre-pruning must be *invisible*: every h-clique
//! lives inside the (h−1)-core, so building verifier networks on that
//! core (`IppvConfig::core_prune`, the Core-Exact trick) may shrink
//! the networks but can never change a verdict — and therefore never
//! changes a single output bit. Pinned here on the paper's Figure 2
//! worked example and on generated community graphs, for both
//! verifier families and all three flow-reuse tiers.

use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::core::FlowReuse;
use lhcds::data::figure2_graph;
use lhcds::data::gen::planted_communities;
use lhcds::graph::CsrGraph;

fn check_graph(g: &CsrGraph, h: usize) {
    for fast in [true, false] {
        for tier in [FlowReuse::Scratch, FlowReuse::Warm, FlowReuse::Ggt] {
            let mk = |core_prune: bool| IppvConfig {
                fast_verify: fast,
                flow_reuse: tier,
                core_prune,
                ..IppvConfig::default()
            };
            let plain = top_k_lhcds(g, h, usize::MAX, &mk(false));
            let pruned = top_k_lhcds(g, h, usize::MAX, &mk(true));
            assert_eq!(
                plain.subgraphs, pruned.subgraphs,
                "h={h} fast={fast} tier={tier}: core pruning changed the output"
            );
            assert_eq!(
                plain.stats.verifications, pruned.stats.verifications,
                "h={h} fast={fast} tier={tier}: core pruning changed the verify schedule"
            );
        }
    }
}

#[test]
fn figure2_is_core_prune_invariant_across_h() {
    let g = figure2_graph();
    for h in [2usize, 3, 4] {
        check_graph(&g, h);
    }
    // and the pruned default still reproduces the paper's top-1
    let cfg = IppvConfig {
        core_prune: true,
        ..IppvConfig::default()
    };
    let res = top_k_lhcds(&g, 3, 1, &cfg);
    assert_eq!(res.subgraphs[0].vertices, vec![11, 12, 13, 14, 15, 16]);
    assert_eq!(res.subgraphs[0].density.to_string(), "13/6");
}

#[test]
fn planted_communities_are_core_prune_invariant() {
    // sparse inter-community fill leaves plenty of vertices outside the
    // 2-core at h = 3 — the prune actually removes something here
    let g = planted_communities(250, 3, &[(12, 0.9), (9, 0.95)], 0xACE);
    check_graph(&g, 3);
}
