//! Integration tests of the exact dense decomposition against the
//! pipeline and the quality measures on realistic generated graphs.

use lhcds::core::density::{compact_numbers, dense_decomposition};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::datasets::by_abbr;
use lhcds::data::gen::planted_communities;
use lhcds::data::polbooks_like;
use lhcds::flow::Ratio;

/// Theorem 1 at scale: on a generated dataset, every reported LhCDS
/// member's compact number equals the subgraph density, and the top-1
/// density equals the global maximum compact number.
#[test]
fn theorem1_on_registry_dataset() {
    let d = by_abbr("GQ").unwrap().generate_scaled(0.08);
    let g = &d.graph;
    let decomp = dense_decomposition(g, 3);
    let res = top_k_lhcds(g, 3, 10, &IppvConfig::default());
    for s in &res.subgraphs {
        for &v in &s.vertices {
            assert_eq!(decomp.phi[v as usize], s.density, "vertex {v}");
        }
    }
    if let (Some(top), Some(level)) = (res.subgraphs.first(), decomp.levels.first()) {
        assert_eq!(top.density, level.density);
    }
}

/// Proposition 4 at scale: across every reported LhCDS, adjacent
/// outside vertices have strictly smaller compact numbers.
#[test]
fn proposition4_neighbors_have_smaller_phi() {
    let g = planted_communities(300, 3, &[(16, 0.9), (12, 0.9)], 31);
    let phi = compact_numbers(&g, 3);
    let res = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
    for s in &res.subgraphs {
        let mut inside = vec![false; g.n()];
        for &v in &s.vertices {
            inside[v as usize] = true;
        }
        for &v in &s.vertices {
            for &w in g.neighbors(v) {
                if !inside[w as usize] {
                    assert!(
                        phi[w as usize] < s.density,
                        "neighbor {w} of LhCDS has phi {} >= {}",
                        phi[w as usize],
                        s.density
                    );
                }
            }
        }
    }
}

/// Level structure on the polbooks case-study network: strictly
/// decreasing levels, phi bounded by the top density, and the pockets
/// occupy the top levels.
#[test]
fn polbooks_decomposition_structure() {
    let pb = polbooks_like();
    let d = dense_decomposition(&pb.graph, 3);
    assert!(!d.levels.is_empty());
    for w in d.levels.windows(2) {
        assert!(w[0].density > w[1].density);
    }
    let top = d.levels[0].density;
    assert!(d.phi.iter().all(|&p| p <= top));
    // the planted conservative pocket (43..52) is in the top level
    let top_level = &d.levels[0].vertices;
    let pocket_hits = (43u32..52).filter(|v| top_level.contains(v)).count();
    assert!(
        pocket_hits >= 7,
        "pocket not at the top level: {top_level:?}"
    );
}

/// The decomposition is deterministic and consistent between the
/// one-shot API and the levels.
#[test]
fn phi_is_consistent_with_levels() {
    let g = planted_communities(200, 2, &[(14, 0.95)], 4);
    let d1 = dense_decomposition(&g, 3);
    let d2 = dense_decomposition(&g, 3);
    assert_eq!(d1.phi, d2.phi);
    for level in &d1.levels {
        for &v in &level.vertices {
            assert_eq!(d1.phi[v as usize], level.density);
        }
        assert!(level.density > Ratio::zero());
    }
    // vertices outside all levels have phi 0
    let mut in_level = vec![false; g.n()];
    for level in &d1.levels {
        for &v in &level.vertices {
            in_level[v as usize] = true;
        }
    }
    for (v, &inside) in in_level.iter().enumerate() {
        if !inside {
            assert_eq!(d1.phi[v], Ratio::zero());
        }
    }
}
