//! Cross-crate integration tests: the full pipeline on generated
//! datasets, structural invariants of the outputs, agreement between
//! all exact configurations, and baseline consistency.

use lhcds::baselines::{greedy_top_k_cds, peel_densest, FlowLds};
use lhcds::clique::{CliqueSet, Parallelism};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig, IppvResult};
use lhcds::data::datasets::by_abbr;
use lhcds::data::gen::{gnp, planted_communities, sbm};
use lhcds::flow::Ratio;
use lhcds::graph::traversal::is_connected_within;
use lhcds::graph::{CsrGraph, InducedSubgraph};

fn check_invariants(g: &CsrGraph, h: usize, res: &IppvResult) {
    let mut seen = vec![false; g.n()];
    let mut last: Option<Ratio> = None;
    for s in &res.subgraphs {
        // pairwise disjoint (Proposition 2)
        for &v in &s.vertices {
            assert!(!seen[v as usize], "overlap at vertex {v}");
            seen[v as usize] = true;
        }
        // connected
        assert!(is_connected_within(g, &s.vertices), "disconnected output");
        // density matches an exact recount on the induced subgraph
        let sub = InducedSubgraph::new(g, &s.vertices);
        let count = CliqueSet::enumerate(&sub.graph, h).len() as i128;
        assert_eq!(
            s.density,
            Ratio::new(count, s.vertices.len() as i128),
            "density mismatch"
        );
        assert_eq!(s.clique_count as i128, count);
        // non-increasing density order
        if let Some(prev) = last {
            assert!(s.density <= prev, "order violated");
        }
        last = Some(s.density);
        // every output has at least one clique
        assert!(s.clique_count > 0);
    }
}

#[test]
fn planted_communities_are_recovered() {
    // two planted near-cliques in a sparse background: the pipeline
    // must find both as the top-2 L3CDSes
    let g = planted_communities(400, 2, &[(18, 0.95), (14, 0.95)], 77);
    let res = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
    assert_eq!(res.subgraphs.len(), 2);
    check_invariants(&g, 3, &res);
    // the top-1 region lives inside the first pocket's id range
    let pocket_a: Vec<u32> = (400..418).collect();
    let hits = res.subgraphs[0]
        .vertices
        .iter()
        .filter(|v| pocket_a.contains(v))
        .count();
    assert!(
        hits >= res.subgraphs[0].vertices.len() * 9 / 10,
        "top-1 should be the big pocket, got {:?}",
        res.subgraphs[0].vertices
    );
}

#[test]
fn invariants_hold_across_h_on_registry_dataset() {
    let d = by_abbr("HA").unwrap().generate_scaled(0.05);
    for h in [2usize, 3, 4, 5] {
        let res = top_k_lhcds(&d.graph, h, 8, &IppvConfig::default());
        check_invariants(&d.graph, h, &res);
    }
}

#[test]
fn all_exact_configurations_agree() {
    let g = planted_communities(250, 3, &[(15, 0.9), (12, 0.85), (10, 0.9)], 42);
    let reference = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
    let configs = [
        IppvConfig {
            fast_verify: false,
            ..IppvConfig::default()
        },
        IppvConfig {
            cp_iterations: 1,
            ..IppvConfig::default()
        },
        IppvConfig {
            cp_iterations: 100,
            ..IppvConfig::default()
        },
        IppvConfig {
            use_prune: false,
            ..IppvConfig::default()
        },
        IppvConfig {
            use_cp: false,
            use_prune: false,
            fast_verify: false,
            ..IppvConfig::default()
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let res = top_k_lhcds(&g, 3, 10, cfg);
        assert_eq!(
            res.subgraphs, reference.subgraphs,
            "config {i} diverged from the reference"
        );
    }
}

#[test]
fn baselines_are_consistent_with_ippv() {
    let (g, _) = sbm(&[40, 40, 40], 0.25, 0.01, 5);
    // LDSflow / LTDS are exact: identical results
    for h in [2usize, 3] {
        let ippv = top_k_lhcds(&g, h, 5, &IppvConfig::default());
        let flow = FlowLds { h }.top_k(&g, 5);
        assert_eq!(ippv.subgraphs, flow.subgraphs, "h={h}");
    }
    // Greedy's first extraction matches the top-1 CDS density
    let ippv = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
    let greedy = greedy_top_k_cds(&g, 3, 1, 30);
    if let (Some(a), Some(b)) = (ippv.subgraphs.first(), greedy.first()) {
        assert_eq!(a.density, b.density);
    }
    // peeling respects the 1/h approximation bound
    if let (Some(opt), Some(peel)) = (ippv.subgraphs.first(), peel_densest(&g, 3)) {
        let bound = opt.density * Ratio::new(1, 3);
        assert!(peel.density >= bound, "peel below 1/h bound");
    }
}

#[test]
fn top1_is_the_global_cds() {
    // the densest subgraph of the whole graph is always the top-1 LhCDS
    let g = planted_communities(300, 3, &[(16, 0.95)], 99);
    let res = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
    let top = &res.subgraphs[0];
    // no subgraph can be denser: check against the exact densest
    // decomposition over the whole graph
    let cs = CliqueSet::enumerate(&g, 3);
    let all: Vec<u32> = g.vertices().collect();
    let (inst, _) = lhcds::core::compact::local_instance(&cs, &all);
    let (rho_star, _) = lhcds::core::compact::densest_decomposition(&inst).unwrap();
    assert_eq!(top.density, rho_star);
}

/// The full IPPV decomposition (not just the top-k prefix) must be
/// identical whether h-cliques are enumerated serially or on 2/4/8
/// worker threads — the pipeline-level face of the serial-equivalence
/// contract in `crates/clique/tests/parallel.rs`.
#[test]
fn parallel_enumeration_yields_identical_decomposition() {
    let g = planted_communities(350, 3, &[(16, 0.9), (13, 0.85), (11, 0.9)], 2024);
    for h in [2usize, 3, 4] {
        let serial = top_k_lhcds(
            &g,
            h,
            usize::MAX,
            &IppvConfig {
                parallelism: Parallelism::serial(),
                ..IppvConfig::default()
            },
        );
        check_invariants(&g, h, &serial);
        for t in [2usize, 4, 8] {
            let cfg = IppvConfig {
                parallelism: Parallelism::threads(t),
                ..IppvConfig::default()
            };
            let par = top_k_lhcds(&g, h, usize::MAX, &cfg);
            assert_eq!(par.subgraphs, serial.subgraphs, "h={h} threads={t}");
            assert_eq!(par.stats.clique_count, serial.stats.clique_count);
        }
        // the auto policy (whatever it resolves to on this machine) is
        // equivalent too
        let auto = top_k_lhcds(
            &g,
            h,
            usize::MAX,
            &IppvConfig {
                parallelism: Parallelism::auto(),
                ..IppvConfig::default()
            },
        );
        assert_eq!(auto.subgraphs, serial.subgraphs, "h={h} auto");
    }
}

#[test]
fn determinism_across_runs() {
    let g = gnp(300, 0.06, 1234);
    let a = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
    let b = top_k_lhcds(&g, 3, 5, &IppvConfig::default());
    assert_eq!(a.subgraphs, b.subgraphs);
}

#[test]
fn k_larger_than_available_returns_all() {
    let g = planted_communities(150, 2, &[(12, 0.95), (10, 0.95)], 3);
    let all = top_k_lhcds(&g, 3, usize::MAX, &IppvConfig::default());
    let top100 = top_k_lhcds(&g, 3, 100, &IppvConfig::default());
    assert_eq!(all.subgraphs, top100.subgraphs);
    // prefix property: top-k is a prefix of top-(k+1)
    for k in 1..all.subgraphs.len() {
        let partial = top_k_lhcds(&g, 3, k, &IppvConfig::default());
        assert_eq!(partial.subgraphs[..], all.subgraphs[..k]);
    }
}

#[test]
fn dense_sbm_stress() {
    // dense overlapping structure with many ties
    let (g, _) = sbm(&[25, 25], 0.5, 0.1, 21);
    for h in [2usize, 3, 4] {
        let res = top_k_lhcds(&g, h, 10, &IppvConfig::default());
        check_invariants(&g, h, &res);
        let basic = top_k_lhcds(
            &g,
            h,
            10,
            &IppvConfig {
                fast_verify: false,
                ..IppvConfig::default()
            },
        );
        assert_eq!(res.subgraphs, basic.subgraphs, "h={h}");
    }
}
