//! Workspace-level flow-reuse equivalence: the served artifacts
//! (`DecompositionIndex` contents, full decompositions, compact
//! numbers) are byte-identical whether the verification stack reuses
//! warm-started parametric networks (default) or rebuilds one network
//! per density probe — on the paper's Figure 2 worked example and on
//! generated community graphs.

use lhcds::core::density::dense_decomposition_opts;
use lhcds::core::index::{DecompositionIndex, IndexConfig};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::figure2_graph;
use lhcds::data::gen::planted_communities;
use lhcds::graph::CsrGraph;

fn cfg(flow_reuse: bool) -> IppvConfig {
    IppvConfig {
        flow_reuse,
        ..IppvConfig::default()
    }
}

fn check_graph(g: &CsrGraph, h: usize) {
    // full decomposition, both verifier families
    for fast in [true, false] {
        let mk = |reuse: bool| IppvConfig {
            fast_verify: fast,
            ..cfg(reuse)
        };
        let reused = top_k_lhcds(g, h, usize::MAX, &mk(true));
        let scratch = top_k_lhcds(g, h, usize::MAX, &mk(false));
        assert_eq!(reused.subgraphs, scratch.subgraphs, "h={h} fast={fast}");
    }
    // the frozen index: byte-identity of every serialized part
    let mk_index = |reuse: bool| {
        DecompositionIndex::build(
            g,
            h,
            &IndexConfig {
                ippv: cfg(reuse),
                ..IndexConfig::default()
            },
        )
    };
    assert_eq!(
        mk_index(true).as_parts(),
        mk_index(false).as_parts(),
        "h={h}: index parts diverged"
    );
    // the dense-decomposition ladder (exact compact numbers)
    let cliques = lhcds::clique::CliqueSet::enumerate(g, h);
    let a = dense_decomposition_opts(g, &cliques, true);
    let b = dense_decomposition_opts(g, &cliques, false);
    assert_eq!(a.levels, b.levels, "h={h}");
    assert_eq!(a.phi, b.phi, "h={h}");
}

#[test]
fn figure2_is_reuse_invariant_across_h() {
    let g = figure2_graph();
    for h in [2usize, 3, 4] {
        check_graph(&g, h);
    }
    // and the reuse default still reproduces the paper's top-1
    let res = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
    assert_eq!(res.subgraphs[0].vertices, vec![11, 12, 13, 14, 15, 16]);
    assert_eq!(res.subgraphs[0].density.to_string(), "13/6");
}

#[test]
fn planted_communities_are_reuse_invariant() {
    let g = planted_communities(250, 3, &[(12, 0.9), (9, 0.95)], 0xACE);
    check_graph(&g, 3);
}
