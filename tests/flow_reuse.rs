//! Workspace-level flow-reuse equivalence: the served artifacts
//! (`DecompositionIndex` contents, full decompositions, compact
//! numbers) are byte-identical across all three `flow_reuse` tiers —
//! `scratch` (one network per probe), `warm` (warm-started parametric
//! re-solves), and `ggt` (one never-reset flow driving the whole
//! ladder by principal-partition recursion, the default) — on the
//! paper's Figure 2 worked example and on generated community graphs.

use lhcds::core::density::dense_decomposition_opts;
use lhcds::core::index::{DecompositionIndex, IndexConfig};
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::core::FlowReuse;
use lhcds::data::figure2_graph;
use lhcds::data::gen::planted_communities;
use lhcds::graph::CsrGraph;

const TIERS: [FlowReuse; 3] = [FlowReuse::Scratch, FlowReuse::Warm, FlowReuse::Ggt];

fn cfg(flow_reuse: FlowReuse) -> IppvConfig {
    IppvConfig {
        flow_reuse,
        ..IppvConfig::default()
    }
}

fn check_graph(g: &CsrGraph, h: usize) {
    // full decomposition, both verifier families, scratch as baseline
    for fast in [true, false] {
        let mk = |reuse: FlowReuse| IppvConfig {
            fast_verify: fast,
            ..cfg(reuse)
        };
        let scratch = top_k_lhcds(g, h, usize::MAX, &mk(FlowReuse::Scratch));
        for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
            let reused = top_k_lhcds(g, h, usize::MAX, &mk(tier));
            assert_eq!(
                reused.subgraphs, scratch.subgraphs,
                "h={h} fast={fast} tier={tier}"
            );
        }
    }
    // the frozen index: byte-identity of every serialized part
    let mk_index = |reuse: FlowReuse| {
        DecompositionIndex::build(
            g,
            h,
            &IndexConfig {
                ippv: cfg(reuse),
                ..IndexConfig::default()
            },
        )
    };
    let baseline = mk_index(FlowReuse::Scratch);
    for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
        assert_eq!(
            mk_index(tier).as_parts(),
            baseline.as_parts(),
            "h={h} tier={tier}: index parts diverged"
        );
    }
    // the dense-decomposition ladder (exact compact numbers)
    let cliques = lhcds::clique::CliqueSet::enumerate(g, h);
    let a = dense_decomposition_opts(g, &cliques, FlowReuse::Scratch);
    for tier in [FlowReuse::Warm, FlowReuse::Ggt] {
        let b = dense_decomposition_opts(g, &cliques, tier);
        assert_eq!(a.levels, b.levels, "h={h} tier={tier}");
        assert_eq!(a.phi, b.phi, "h={h} tier={tier}");
    }
}

#[test]
fn figure2_is_reuse_invariant_across_h() {
    let g = figure2_graph();
    for h in [2usize, 3, 4] {
        check_graph(&g, h);
    }
    // and the reuse default still reproduces the paper's top-1
    let res = top_k_lhcds(&g, 3, 1, &IppvConfig::default());
    assert_eq!(res.subgraphs[0].vertices, vec![11, 12, 13, 14, 15, 16]);
    assert_eq!(res.subgraphs[0].density.to_string(), "13/6");
}

#[test]
fn planted_communities_are_reuse_invariant() {
    let g = planted_communities(250, 3, &[(12, 0.9), (9, 0.95)], 0xACE);
    check_graph(&g, 3);
}

#[test]
fn all_tiers_parse_and_roundtrip_display() {
    for tier in TIERS {
        let parsed: FlowReuse = tier.to_string().parse().unwrap();
        assert_eq!(parsed, tier);
    }
    assert!("eager".parse::<FlowReuse>().is_err());
}
