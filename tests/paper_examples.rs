//! Golden tests against the paper's worked examples (Figure 2,
//! Figure 4, the §4.3 pruning walk-through, and the Figure 1 use case).

use lhcds::core::bruteforce::all_lhcds_bruteforce;
use lhcds::core::pipeline::{top_k_lhcds, IppvConfig};
use lhcds::data::builtin::{FIGURE2_S1, FIGURE2_S2, FIGURE2_S3};
use lhcds::data::{figure2_graph, harry_potter_like};
use lhcds::flow::Ratio;

/// Figure 2: the top-1 L3CDS is S1 with 3-clique density 13/6, the
/// top-2 is S2 with density 2, and nothing else qualifies.
#[test]
fn figure2_l3cds_ranking() {
    let g = figure2_graph();
    let res = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
    assert_eq!(res.subgraphs.len(), 2, "exactly two L3CDSes");
    assert_eq!(res.subgraphs[0].vertices, FIGURE2_S1.to_vec());
    assert_eq!(res.subgraphs[0].density, Ratio::new(13, 6));
    assert_eq!(res.subgraphs[0].clique_count, 13);
    assert_eq!(res.subgraphs[1].vertices, FIGURE2_S2.to_vec());
    assert_eq!(res.subgraphs[1].density, Ratio::from_int(2));
    assert_eq!(res.subgraphs[1].clique_count, 10);
}

/// Figure 2: "The top-1 and top-2 L4CDSes are G[S2] and G[S1]. They
/// both have a 4-clique density of 1."
#[test]
fn figure2_l4cds_ranking() {
    let g = figure2_graph();
    let res = top_k_lhcds(&g, 4, 10, &IppvConfig::default());
    assert_eq!(res.subgraphs.len(), 2);
    assert_eq!(res.subgraphs[0].density, Ratio::from_int(1));
    assert_eq!(res.subgraphs[1].density, Ratio::from_int(1));
    assert_eq!(res.subgraphs[0].vertices, FIGURE2_S2.to_vec());
    assert_eq!(res.subgraphs[1].vertices, FIGURE2_S1.to_vec());
}

/// The brute-force oracle agrees with the pipeline on the full
/// Figure 2 graph (20 vertices — the upper end of the oracle's range;
/// h = 2 is skipped here because nearly every subset of the graph is
/// connected with positive edge count, which drives the oracle's
/// subset scan to its 3^20 worst case — the h = 2 ≡ LDS behaviour is
/// oracle-tested on smaller random graphs in `crates/core/tests`).
#[test]
fn figure2_oracle_agreement() {
    let g = figure2_graph();
    for h in [3usize, 4] {
        let oracle = all_lhcds_bruteforce(&g, h);
        let pipeline = top_k_lhcds(&g, h, usize::MAX, &IppvConfig::default());
        assert_eq!(
            pipeline.subgraphs.len(),
            oracle.len(),
            "h={h}: pipeline {:?} vs oracle {:?}",
            pipeline.subgraphs,
            oracle
        );
        for (p, o) in pipeline.subgraphs.iter().zip(&oracle) {
            assert_eq!(p.vertices, o.vertices, "h={h}");
            assert_eq!(p.density, o.density, "h={h}");
        }
    }
}

/// S3 (the diamond) has compact number 1/2 but is *not* an LhCDS: the
/// edge (v6, v9) merges it into S2's 1/2-compact neighborhood, so it is
/// not maximal. Its vertices must never be reported.
#[test]
fn figure2_s3_is_not_an_lhcds() {
    let g = figure2_graph();
    let res = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
    for s in &res.subgraphs {
        for v in FIGURE2_S3 {
            assert!(!s.vertices.contains(&v), "S3 vertex {v} reported");
        }
    }
}

/// §4.3 pruning walk-through: with converged bounds, v9 and v11 (ids 8
/// and 10) are pruned by condition (1), then v8 and v10 (ids 7 and 9)
/// fall to condition (2). We assert the end effect: the verification
/// stage never has to inspect a candidate containing them (they are
/// pruned or killed, never output) and the stats show pruning work.
#[test]
fn figure2_pruning_is_effective() {
    let g = figure2_graph();
    let res = top_k_lhcds(&g, 3, 10, &IppvConfig::default());
    // with default T=20 the CP bounds separate the regions; pruning must
    // remove at least the pendant vertices v1/v7 or the diamond
    assert!(
        res.stats.pruned_vertices > 0,
        "expected pruning on the Figure 2 graph, stats: {:?}",
        res.stats
    );
}

/// Figure 4: in S2 = K5, the 3-clique compact number of v2 is 2 and the
/// CP optimum assigns r*(v2) = 6 · (1/3) = 2.
#[test]
fn figure4_compact_number_of_v2() {
    let g = figure2_graph();
    let res = top_k_lhcds(&g, 3, 2, &IppvConfig::default());
    let s2 = &res.subgraphs[1];
    assert!(s2.vertices.contains(&1)); // v2 = id 1
    assert_eq!(s2.density, Ratio::from_int(2)); // φ₃(v2) = d(S2) = 2
}

/// Figure 1: the family 9-clique is the top-1 L3CDS of the
/// Harry-Potter-like network; the villain organization is top-2.
#[test]
fn harry_potter_top2_communities() {
    let hp = harry_potter_like();
    let res = top_k_lhcds(&hp.graph, 3, 2, &IppvConfig::default());
    assert_eq!(res.subgraphs.len(), 2);
    let top1_labels: Vec<u32> = res.subgraphs[0]
        .vertices
        .iter()
        .map(|&v| hp.labels[v as usize])
        .collect();
    assert!(top1_labels.iter().all(|&l| l == 0), "top-1 is the family");
    assert_eq!(res.subgraphs[0].vertices.len(), 9);
    let top2_labels: Vec<u32> = res.subgraphs[1]
        .vertices
        .iter()
        .map(|&v| hp.labels[v as usize])
        .collect();
    assert!(
        top2_labels.iter().all(|&l| l == 1),
        "top-2 is the organization"
    );
}

/// Exact compact numbers of the Figure 2 reconstruction (computed by
/// the flow-based dense decomposition, validated against brute force in
/// `crates/core/tests/oracle.rs`). Every value the paper states
/// explicitly is reproduced: φ₃ = 0 for v1/v7, 2 for S2, 1/2 for S3,
/// 13/6 for S1. (v18–v20 get 4/3 here — see `figure2_graph` docs.)
#[test]
fn figure2_exact_compact_numbers() {
    let g = figure2_graph();
    let phi = lhcds::core::density::compact_numbers(&g, 3);
    let expected: Vec<(usize, Ratio)> = std::iter::once((0usize, Ratio::zero()))
        .chain((1..=5).map(|v| (v, Ratio::from_int(2))))
        .chain(std::iter::once((6, Ratio::zero())))
        .chain((7..=10).map(|v| (v, Ratio::new(1, 2))))
        .chain((11..=16).map(|v| (v, Ratio::new(13, 6))))
        .chain((17..=19).map(|v| (v, Ratio::new(4, 3))))
        .collect();
    for (v, want) in expected {
        assert_eq!(phi[v], want, "paper v{}", v + 1);
    }
}

/// The dense decomposition levels of Figure 2 in order:
/// 13/6 (S1) → 2 (S2) → 4/3 (K4 corner) → 1/2 (diamond).
#[test]
fn figure2_density_levels() {
    let g = figure2_graph();
    let d = lhcds::core::density::dense_decomposition(&g, 3);
    let densities: Vec<String> = d.levels.iter().map(|l| l.density.to_string()).collect();
    assert_eq!(densities, vec!["13/6", "2", "4/3", "1/2"]);
    assert_eq!(d.levels[0].vertices, FIGURE2_S1.to_vec());
    assert_eq!(d.levels[1].vertices, FIGURE2_S2.to_vec());
    assert_eq!(d.levels[3].vertices, FIGURE2_S3.to_vec());
}
