//! Integration tests of the LhxPDS pattern pipeline against the clique
//! pipeline, the brute-force oracle (via instance-store injection), and
//! structural invariants.

use lhcds::core::pipeline::{top_k_lhcds, top_k_with_instances, IppvConfig};
use lhcds::data::gen::{gnp, planted_communities};
use lhcds::flow::Ratio;
use lhcds::graph::traversal::is_connected_within;
use lhcds::patterns::enumerate::enumerate_pattern;
use lhcds::patterns::{top_k_lhxpds, Pattern};

#[test]
fn clique_patterns_equal_clique_pipeline() {
    let g = planted_communities(200, 3, &[(14, 0.9), (10, 0.95)], 8);
    for (p, h) in [
        (Pattern::Edge, 2usize),
        (Pattern::Triangle, 3),
        (Pattern::Clique4, 4),
        (Pattern::Clique(5), 5),
    ] {
        let via_pattern = top_k_lhxpds(&g, p, 5, &IppvConfig::default());
        let via_clique = top_k_lhcds(&g, h, 5, &IppvConfig::default());
        assert_eq!(via_pattern.subgraphs, via_clique.subgraphs, "{p}");
    }
}

#[test]
fn pattern_outputs_satisfy_invariants() {
    let g = gnp(120, 0.12, 31);
    for p in Pattern::all_four_vertex() {
        let res = top_k_lhxpds(&g, p, 6, &IppvConfig::default());
        let store = enumerate_pattern(&g, p);
        let mut seen = vec![false; g.n()];
        let mut last: Option<Ratio> = None;
        for s in &res.subgraphs {
            for &v in &s.vertices {
                assert!(!seen[v as usize], "{p}: overlap");
                seen[v as usize] = true;
            }
            assert!(is_connected_within(&g, &s.vertices), "{p}: disconnected");
            if let Some(prev) = last {
                assert!(s.density <= prev, "{p}: order");
            }
            last = Some(s.density);
            // recount instances inside
            let mut inside = vec![false; g.n()];
            for &v in &s.vertices {
                inside[v as usize] = true;
            }
            let count = store.cliques_inside(&inside);
            assert_eq!(
                s.density,
                Ratio::new(count as i128, s.vertices.len() as i128),
                "{p}: density recount"
            );
        }
    }
}

#[test]
fn pattern_pipeline_exactness_via_instance_injection() {
    // The oracle works on any instance store shape: inject 4-cycle
    // instances as if they were "cliques" of arity 4 and compare the
    // pipeline against a manual characterization on a crafted graph.
    //
    // Graph: two disjoint 4-cycles plus one K4 (which hosts 3 cycles).
    let mut edges = vec![
        (0u32, 1u32),
        (1, 2),
        (2, 3),
        (3, 0), // C4 a
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4), // C4 b
    ];
    for u in 8..12u32 {
        for v in u + 1..12 {
            edges.push((u, v)); // K4
        }
    }
    let g = lhcds::graph::CsrGraph::from_edges(12, edges);
    let res = top_k_lhxpds(&g, Pattern::Cycle4, 10, &IppvConfig::default());
    assert_eq!(res.subgraphs.len(), 3);
    // K4 first (3/4), then the two plain cycles (1/4 each)
    assert_eq!(res.subgraphs[0].vertices, vec![8, 9, 10, 11]);
    assert_eq!(res.subgraphs[0].density, Ratio::new(3, 4));
    assert_eq!(res.subgraphs[1].density, Ratio::new(1, 4));
    assert_eq!(res.subgraphs[2].density, Ratio::new(1, 4));
}

#[test]
fn instance_store_injection_matches_direct_api() {
    let g = gnp(80, 0.15, 77);
    let store = enumerate_pattern(&g, Pattern::Diamond);
    let direct = top_k_lhxpds(&g, Pattern::Diamond, 4, &IppvConfig::default());
    let injected = top_k_with_instances(&g, &store, 4, &IppvConfig::default());
    assert_eq!(direct.subgraphs, injected.subgraphs);
}

#[test]
fn star_pattern_on_hub_network() {
    // hubs with many leaves are 3-star-dense; a clique of the same size
    // is denser still per vertex
    let mut edges = Vec::new();
    for leaf in 1..=8u32 {
        edges.push((0, leaf));
    }
    for u in 9..14u32 {
        for v in u + 1..14 {
            edges.push((u, v)); // K5: each vertex centers C(4,3)=4 stars
        }
    }
    let g = lhcds::graph::CsrGraph::from_edges(14, edges);
    let res = top_k_lhxpds(&g, Pattern::Star3, 2, &IppvConfig::default());
    assert!(!res.subgraphs.is_empty());
    // hub star: 1 center with C(8,3) = 56 stars over 9 vertices ≈ 6.2;
    // K5: 5·4 = 20 stars over 5 vertices = 4 → hub wins
    assert!(res.subgraphs[0].vertices.contains(&0));
    assert_eq!(res.subgraphs[0].density, Ratio::new(56, 9));
}

#[test]
fn patterns_differ_in_selected_regions() {
    // a graph where the 4-cycle-densest and the 4-clique-densest differ:
    // a dense bipartite-ish block (many C4, no K4) vs a K5
    let mut edges = Vec::new();
    // complete bipartite K3,3 on 0..6 (9 edges, 9 C4s, no triangle)
    for a in 0..3u32 {
        for b in 3..6u32 {
            edges.push((a, b));
        }
    }
    for u in 6..11u32 {
        for v in u + 1..11 {
            edges.push((u, v)); // K5
        }
    }
    let g = lhcds::graph::CsrGraph::from_edges(11, edges);
    let cycles = top_k_lhxpds(&g, Pattern::Cycle4, 1, &IppvConfig::default());
    let cliques = top_k_lhxpds(&g, Pattern::Clique4, 1, &IppvConfig::default());
    // K3,3: 9 cycles / 6 vertices = 1.5; K5: 3·C(5,4) = 15 cycles / 5 = 3
    // → cycle-densest is the K5 too, but clique-densest has density
    // C(5,4)=5/5=1 while K3,3 has none.
    assert_eq!(cliques.subgraphs[0].vertices, vec![6, 7, 8, 9, 10]);
    assert_eq!(cycles.subgraphs[0].vertices, vec![6, 7, 8, 9, 10]);
    // the bipartite block still shows up as the *second* cycle-dense
    // region
    let cycles2 = top_k_lhxpds(&g, Pattern::Cycle4, 2, &IppvConfig::default());
    assert_eq!(cycles2.subgraphs[1].vertices, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(cycles2.subgraphs[1].density, Ratio::new(9, 6));
}

#[test]
fn oracle_check_for_pattern_pipeline_on_tiny_graphs() {
    // brute-force LhxPDS oracle specialized to 4-cycles on tiny graphs:
    // enumerate instances, then reuse the generic subset logic through
    // the clique oracle by injecting the store is not possible — so we
    // verify the *definition* directly on the outputs instead.
    let g = gnp(10, 0.45, 13);
    let store = enumerate_pattern(&g, Pattern::Cycle4);
    if store.is_empty() {
        return;
    }
    let res = top_k_lhxpds(&g, Pattern::Cycle4, usize::MAX, &IppvConfig::default());
    for s in &res.subgraphs {
        // condition 1: no denser subset (self-densest ⟺ ρ-compact)
        let rho = s.density;
        let n = s.vertices.len();
        for mask in 1u32..(1 << n) {
            let subset: Vec<u32> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| s.vertices[i])
                .collect();
            let mut inside = vec![false; g.n()];
            for &v in &subset {
                inside[v as usize] = true;
            }
            let cnt = store.cliques_inside(&inside);
            assert!(
                Ratio::new(cnt as i128, subset.len() as i128) <= rho,
                "subset denser than its LhxPDS"
            );
        }
    }
}

/// Full exactness oracle for the pattern pipeline: inject each
/// 4-vertex pattern's instance store into the generalized brute-force
/// oracle and compare complete LhxPDS lists on random graphs.
#[test]
fn pattern_pipeline_matches_generalized_oracle() {
    use lhcds::core::bruteforce::all_lhcds_bruteforce_with;
    let mut state = 0xC0FFEEu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..12 {
        let n = 9u32;
        let mut b = lhcds::graph::GraphBuilder::new();
        b.ensure_vertex(n - 1);
        for u in 0..n {
            for v in u + 1..n {
                if rng() % 100 < 45 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        for p in Pattern::all_four_vertex() {
            let store = enumerate_pattern(&g, p);
            if store.is_empty() {
                continue;
            }
            let oracle = all_lhcds_bruteforce_with(&g, &store);
            let got = top_k_lhxpds(&g, p, usize::MAX, &IppvConfig::default());
            assert_eq!(
                got.subgraphs.len(),
                oracle.len(),
                "trial {trial} pattern {p}: {:?} vs {:?}",
                got.subgraphs,
                oracle
            );
            for (a, o) in got.subgraphs.iter().zip(&oracle) {
                assert_eq!(a.vertices, o.vertices, "trial {trial} pattern {p}");
                assert_eq!(a.density, o.density, "trial {trial} pattern {p}");
            }
        }
    }
}

/// Custom five-vertex patterns run through the same oracle.
#[test]
fn custom_pattern_matches_generalized_oracle() {
    use lhcds::core::bruteforce::all_lhcds_bruteforce_with;
    use lhcds::patterns::CustomPattern;
    let bowtie = CustomPattern::new(
        "bowtie",
        5,
        &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)],
    )
    .unwrap();
    let mut state = 0xBEEF5u64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..8 {
        let n = 9u32;
        let mut b = lhcds::graph::GraphBuilder::new();
        b.ensure_vertex(n - 1);
        for u in 0..n {
            for v in u + 1..n {
                if rng() % 100 < 55 {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build();
        let store = bowtie.enumerate(&g);
        if store.is_empty() {
            continue;
        }
        let oracle = all_lhcds_bruteforce_with(&g, &store);
        let got = lhcds::patterns::top_k_custom(&g, &bowtie, usize::MAX, &IppvConfig::default());
        assert_eq!(got.subgraphs.len(), oracle.len());
        for (a, o) in got.subgraphs.iter().zip(&oracle) {
            assert_eq!(a.vertices, o.vertices);
            assert_eq!(a.density, o.density);
        }
    }
}
